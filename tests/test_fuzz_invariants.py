"""The invariant library: clean runs pass, broken state is caught, and
checks are provably read-only (the fingerprint guard)."""

import pytest

from repro.dynamics.engine import AppliedEvent
from repro.dynamics.events import VmShutdown
from repro.fuzz import (
    INVARIANTS,
    check_invariants,
    generate_scenario,
    run_scenario_fuzz,
    state_fingerprint,
)
from repro.fuzz.invariants import rederive_flip
from repro.telemetry import TypeFlip


@pytest.fixture(scope="module")
def outcome():
    """One real run shared by every test; tampering tests restore."""
    return run_scenario_fuzz(generate_scenario(5))


def _names(violations):
    return sorted({v.invariant for v in violations})


class TestCleanRun:
    def test_no_violations(self, outcome):
        assert check_invariants(outcome) == []

    def test_checks_leave_state_untouched(self, outcome):
        before = state_fingerprint(outcome)
        check_invariants(outcome)
        assert state_fingerprint(outcome) == before

    def test_subset_selection(self, outcome):
        assert check_invariants(outcome, names=["no_lost_io"]) == []
        with pytest.raises(ValueError, match="unknown invariants"):
            check_invariants(outcome, names=["no_such_law"])


class TestDetection:
    def test_lost_io_event_detected(self, outcome):
        port = next(
            port for vm in outcome.machine.vms for port in vm.ports
        )
        port.posted += 3  # cook the books: 3 events from nowhere
        try:
            assert _names(check_invariants(outcome)) == ["no_lost_io"]
        finally:
            port.posted -= 3

    def test_unrederivable_flip_detected(self, outcome):
        audit = outcome.telemetry.audit
        window = ((
            (("CONSPIN", 0.0), ("IOINT", 0.0), ("LLCF", 1.0),
             ("LLCO", 0.0), ("LOLCF", 0.0)),
            True,
        ),)
        bogus = TypeFlip(
            time_ns=outcome.end_ns, vcpu_id=999_999, vcpu_name="ghost/v0",
            old_type=None, new_type="LLCO", window=window,
            averages=(("LLCO", 5.0),),
        )
        assert rederive_flip(bogus) == "LLCF"  # the window says LLCF
        audit.flips.append(bogus)
        try:
            assert "vtrs_rederivation" in _names(check_invariants(outcome))
        finally:
            audit.flips.pop()

    def test_watermark_breach_detected(self, outcome):
        outcome.credit_watermark["tampered/v0"] = -5_000.0
        try:
            assert _names(check_invariants(outcome)) == ["credit_fairness"]
        finally:
            del outcome.credit_watermark["tampered/v0"]

    def test_final_credit_outside_band_detected(self, outcome):
        vcpu = outcome.machine.all_vcpus[0]
        original = vcpu.credit
        vcpu.credit = 1_000.0  # above the +clip ceiling
        try:
            assert _names(check_invariants(outcome)) == ["credit_fairness"]
        finally:
            vcpu.credit = original

    def test_open_span_detected(self, outcome):
        tracer = outcome.telemetry.tracer
        span = tracer.begin(outcome.end_ns, "leak", track="fuzz-test")
        try:
            assert "span_nesting" in _names(check_invariants(outcome))
        finally:
            tracer._open[span.track].remove(span)

    def test_time_travel_in_event_log_detected(self, outcome):
        applied = outcome.engine.applied
        applied.append(AppliedEvent(0, VmShutdown(0, name="ghost")))
        applied.append(
            AppliedEvent(outcome.end_ns + 1, VmShutdown(0, name="ghost"))
        )
        try:
            names = _names(check_invariants(outcome))
            assert names == ["monotone_time"]
        finally:
            applied.pop()
            applied.pop()


class TestReadOnlyEnforcement:
    def test_mutating_check_is_rejected(self, outcome):
        """A check that touches state must be caught by the guard."""
        def evil(out):
            out.machine.all_vcpus[0].credit += 1.0
            return []

        INVARIANTS["evil"] = evil
        try:
            with pytest.raises(RuntimeError, match="read-only"):
                check_invariants(outcome, names=["evil"])
        finally:
            del INVARIANTS["evil"]
            outcome.machine.all_vcpus[0].credit -= 1.0

    def test_fingerprint_sees_port_counters(self, outcome):
        before = state_fingerprint(outcome)
        port = next(
            port for vm in outcome.machine.vms for port in vm.ports
        )
        port.discarded += 1
        try:
            assert state_fingerprint(outcome) != before
        finally:
            port.discarded -= 1
        assert state_fingerprint(outcome) == before
