"""Tests for the named application catalog."""

import pytest

from repro.core.types import VCpuType
from repro.hardware.specs import i7_3770
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.spin import SpinWorkload
from repro.workloads.suites import (
    APP_CATALOG,
    make_app,
    programs_of_suite,
)


class TestCatalogContents:
    def test_paper_table3_classes(self):
        """Every program lands in the class the paper's Table 3 lists."""
        expectations = {
            "astar": VCpuType.LLCF,
            "xalancbmk": VCpuType.LLCF,
            "bzip2": VCpuType.LLCF,
            "gcc": VCpuType.LLCF,
            "omnetpp": VCpuType.LLCF,
            "hmmer": VCpuType.LOLCF,
            "gobmk": VCpuType.LOLCF,
            "perlbench": VCpuType.LOLCF,
            "sjeng": VCpuType.LOLCF,
            "h264ref": VCpuType.LOLCF,
            "mcf": VCpuType.LLCO,
            "libquantum": VCpuType.LLCO,
            "specweb2009": VCpuType.IOINT,
            "specmail2009": VCpuType.IOINT,
        }
        for name, vtype in expectations.items():
            assert APP_CATALOG[name].expected_type == vtype

    def test_all_twelve_parsec_programs_present(self):
        parsec = programs_of_suite("parsec")
        assert len(parsec) == 12
        assert all(a.expected_type == VCpuType.CONSPIN for a in parsec)

    def test_calibration_micro_benchmarks_present(self):
        for name in ("wordpress", "kernbench", "listwalk-llcf",
                     "listwalk-lolcf", "listwalk-llco"):
            assert name in APP_CATALOG

    def test_catalog_size(self):
        # 12 SPEC CPU2006 + 12 PARSEC + 2 SPEC server + 5 micro
        assert len(APP_CATALOG) == 31


class TestMakeApp:
    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            make_app("doom", i7_3770())

    def test_cpu_app_type(self):
        app = make_app("bzip2", i7_3770())
        assert isinstance(app, CpuBurnWorkload)

    def test_parsec_app_threads_follow_vcpus(self):
        app = make_app("facesim", i7_3770(), vcpus=4)
        assert isinstance(app, SpinWorkload)
        assert app.threads_wanted == 4

    def test_web_app_type(self):
        app = make_app("specweb2009", i7_3770(), vcpus=2)
        assert isinstance(app, IoWorkload)
        assert app.vcpus_wanted == 2

    def test_per_program_jitter_distinguishes_programs(self):
        spec = i7_3770()
        a = make_app("astar", spec)
        b = make_app("bzip2", spec)
        assert a.profile.wss_bytes != b.profile.wss_bytes

    def test_jitter_is_deterministic(self):
        spec = i7_3770()
        assert (
            make_app("astar", spec).profile.wss_bytes
            == make_app("astar", spec).profile.wss_bytes
        )

    def test_llco_programs_overflow_llc(self):
        spec = i7_3770()
        for name in ("mcf", "libquantum"):
            app = make_app(name, spec)
            assert app.profile.wss_bytes > spec.llc.capacity_bytes

    def test_lolcf_programs_fit_l2(self):
        spec = i7_3770()
        for name in ("hmmer", "sjeng", "gobmk", "perlbench", "h264ref"):
            app = make_app(name, spec)
            assert app.profile.wss_bytes <= spec.l2.capacity_bytes
