"""Cache-key and cache-robustness properties of ``repro.exec``.

The cache key must be a *pure* function of the computation: invariant
to incidental representation (dict insertion order, pickling round
trips), and distinct under any perturbation that changes the result
(seed, quantum, policy configuration, code salt).  The on-disk cache
must treat every form of corruption as a miss, never a crash.
"""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import AqlPolicy, XenCredit
from repro.exec import Cell, ResultCache, canonical, fingerprint
from repro.exec.hashing import code_salt
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.hardware.specs import i7_3770

# -- key construction --------------------------------------------------

_primitives = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_params = st.dictionaries(
    st.text(min_size=1, max_size=8), _primitives, max_size=6
)


def _cell_fn(**kwargs):  # a stand-in sweep cell; never actually run
    return kwargs


class TestKeyProperties:
    @given(_params)
    def test_key_invariant_to_dict_ordering(self, params):
        reordered = dict(reversed(list(params.items())))
        a = Cell(_cell_fn, params).cache_key("salt")
        b = Cell(_cell_fn, reordered).cache_key("salt")
        assert a == b

    @given(_params)
    def test_key_survives_pickle_round_trip(self, params):
        thawed = pickle.loads(pickle.dumps(params))
        a = Cell(_cell_fn, params).cache_key("salt")
        b = Cell(_cell_fn, thawed).cache_key("salt")
        assert a == b

    @given(_params, st.text(min_size=1, max_size=8), _primitives)
    def test_key_distinct_when_param_added_or_changed(
        self, params, key, value
    ):
        changed = dict(params)
        changed[key] = value
        base = Cell(_cell_fn, params).cache_key("salt")
        other = Cell(_cell_fn, changed).cache_key("salt")
        if canonical(changed) == canonical(params):
            assert base == other
        else:
            assert base != other

    @pytest.mark.parametrize(
        "perturbation",
        [
            dict(seed=1),
            dict(quantum_ms=60),
            dict(policy=XenCredit()),
            dict(policy=AqlPolicy(window=8)),
            dict(policy=AqlPolicy(uniform_quantum_ns=1_000_000)),
        ],
    )
    def test_key_distinct_across_perturbations(self, perturbation):
        base_kwargs = dict(
            scenario=SCENARIOS["S1"], policy=AqlPolicy(), seed=0,
            quantum_ms=30, spec=i7_3770(),
        )
        base = Cell(_cell_fn, base_kwargs).cache_key("salt")
        perturbed = Cell(
            _cell_fn, {**base_kwargs, **perturbation}
        ).cache_key("salt")
        assert base != perturbed

    def test_key_depends_on_function_and_salt(self):
        def other_fn(**kwargs):
            return kwargs

        params = {"seed": 0}
        assert (
            Cell(_cell_fn, params).cache_key("salt")
            != Cell(other_fn, params).cache_key("salt")
        )
        assert (
            Cell(_cell_fn, params).cache_key("salt-a")
            != Cell(_cell_fn, params).cache_key("salt-b")
        )

    def test_policy_state_feeds_the_key(self):
        # two fresh AqlPolicy objects with equal config hash equal;
        # any config difference separates them
        assert fingerprint(AqlPolicy()) == fingerprint(AqlPolicy())
        assert fingerprint(AqlPolicy()) != fingerprint(AqlPolicy(window=8))

    def test_unknown_objects_rejected_loudly(self):
        class Opaque:
            __slots__ = ("x",)

        with pytest.raises(TypeError):
            fingerprint({"bad": Opaque()})

    def test_code_salt_stable_within_process(self):
        assert code_salt() == code_salt()


# -- on-disk robustness ------------------------------------------------


class TestResultCache:
    def test_round_trip_is_byte_identical(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        value = {"metric": 1.25, "series": [1, 2, 3]}
        payload = cache.put("ab" * 32, value)
        entry = cache.get("ab" * 32)
        assert entry.hit
        assert entry.value == value
        assert entry.payload == payload
        assert pickle.loads(entry.payload) == value

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert not cache.get("cd" * 32).hit
        assert cache.stats.misses == 1
        assert cache.stats.invalidations == 0

    @pytest.mark.parametrize(
        "corruptor",
        [
            lambda raw: raw[: len(raw) // 2],  # truncated
            lambda raw: b"",  # emptied
            lambda raw: b"junk" + raw,  # bad magic
            lambda raw: raw[:-1] + bytes([raw[-1] ^ 0xFF]),  # bit flip
            lambda raw: raw[:44] + b"\x00" * (len(raw) - 44),  # body wiped
        ],
    )
    def test_corrupted_entry_is_invalidated_not_fatal(
        self, tmp_path, corruptor
    ):
        cache = ResultCache(root=tmp_path)
        key = "ef" * 32
        cache.put(key, [1.0, 2.0])
        path = cache.path_for(key)
        path.write_bytes(corruptor(path.read_bytes()))
        entry = cache.get(key)
        assert not entry.hit
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        # the bad file is discarded so the rewrite starts clean
        assert not path.exists()

    def test_unpicklable_payload_with_valid_checksum_is_a_miss(
        self, tmp_path
    ):
        import hashlib

        cache = ResultCache(root=tmp_path)
        key = "0a" * 32
        bogus = b"not a pickle at all"
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(
            b"REPROCACHE1\n" + hashlib.sha256(bogus).digest() + bogus
        )
        assert not cache.get(key).hit
        assert cache.stats.invalidations == 1

    def test_clear_removes_everything(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, i)
        assert cache.clear() == 3
        assert not cache.get("00" * 32).hit

    def test_scenario_run_payload_round_trips(self, tmp_path):
        from repro.experiments.scenarios import AppPlacement, Scenario
        from repro.sim.units import MS

        tiny = Scenario(
            "tiny-io",
            (AppPlacement("specweb2009", 2), AppPlacement("bzip2", 2)),
            pcpus=2,
        )
        run = run_scenario(
            tiny, XenCredit(),
            warmup_ns=50 * MS, measure_ns=150 * MS, seed=0,
        )
        cache = ResultCache(root=tmp_path)
        cache.put("11" * 32, run)
        replay = cache.get("11" * 32).value
        assert replay.by_placement == run.by_placement
        assert replay.results == run.results
        assert replay.pool_layout == run.pool_layout
