"""Cadence and accounting-precision tests for the machine internals."""

import pytest

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import Priority
from repro.sim.units import MS, SEC


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


class TestTickCadence:
    def test_runtime_accounting_is_exact(self):
        """Integrated run time matches wall time on a saturated pCPU
        regardless of tick/quantum alignment."""
        machine = Machine(seed=0, default_quantum_ns=7 * MS)  # odd quantum
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 7 * MS)
        vm = machine.new_vm("vm", 1, pool=pool)
        vm.guest.add_thread(GuestThread("t", hog_body))
        machine.run(333 * MS)
        machine.sync()
        assert vm.vcpus[0].run_ns_total == pytest.approx(333 * MS, rel=1e-6)

    def test_sync_is_idempotent(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        vm.guest.add_thread(GuestThread("t", hog_body))
        machine.run(50 * MS)
        machine.sync()
        first = vm.vcpus[0].run_ns_total
        machine.sync()
        machine.sync()
        assert vm.vcpus[0].run_ns_total == first

    def test_instructions_match_run_time_for_flat_profile(self):
        """base_cpi 0.3 ns + no memory: instructions = run_ns / 0.3."""
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        thread = GuestThread("t", hog_body)
        vm.guest.add_thread(thread)
        machine.run(100 * MS)
        machine.sync()
        expected = thread.run_ns / 0.30
        assert thread.instructions_retired == pytest.approx(expected, rel=1e-3)

    def test_every_periodic_callback_fires(self):
        machine = Machine(seed=0)
        fired = []
        machine.every(25 * MS, lambda: fired.append(machine.sim.now), "probe")
        machine.run(200 * MS)
        assert fired == [25 * MS * i for i in range(1, 9)]


class TestGuestTimeslice:
    def test_two_threads_one_vcpu_share_via_guest_slice(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        a = GuestThread("a", hog_body)
        b = GuestThread("b", hog_body)
        vm.guest.add_thread(a, vm.vcpus[0])
        vm.guest.add_thread(b, vm.vcpus[0])
        machine.run(1 * SEC)
        machine.sync()
        assert a.run_ns == pytest.approx(0.5 * SEC, rel=0.1)
        assert b.run_ns == pytest.approx(0.5 * SEC, rel=0.1)

    def test_guest_slice_is_finer_than_quantum(self):
        """On a dedicated pCPU (no hypervisor preemption), the guest
        still rotates its threads at tick granularity."""
        machine = Machine(seed=0, default_quantum_ns=90 * MS)
        vm = machine.new_vm("vm", 1)
        a = GuestThread("a", hog_body)
        b = GuestThread("b", hog_body)
        vm.guest.add_thread(a, vm.vcpus[0])
        vm.guest.add_thread(b, vm.vcpus[0])
        machine.run(100 * MS)
        machine.sync()
        # both made progress well before the 90 ms quantum ended twice
        assert a.run_ns > 10 * MS
        assert b.run_ns > 10 * MS


class TestPriorityDynamics:
    def test_saturated_vcpus_credits_stay_bounded(self):
        """Oversubscribed hogs oscillate between UNDER and OVER (they
        burn a full quantum, then earn for three); balances never
        escape the clip and at least one vCPU is in debt at any time."""
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        vms = [machine.new_vm(f"vm{i}", 1, pool=pool) for i in range(4)]
        for vm in vms:
            vm.guest.add_thread(GuestThread(vm.name, hog_body))
        machine.run(1 * SEC)
        clip = machine.params.credit_clip
        credits = [vm.vcpus[0].credit for vm in vms]
        assert all(-clip <= c <= clip for c in credits)
        assert min(credits) <= 0  # whoever just ran is in debt

    def test_idle_vcpu_stays_under(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        idle_vm = machine.new_vm("idle", 1, pool=pool)  # no threads
        hog_vm = machine.new_vm("hog", 1, pool=pool)
        hog_vm.guest.add_thread(GuestThread("h", hog_body))
        machine.run(500 * MS)
        assert idle_vm.vcpus[0].credit > 0
        assert machine.scheduler.priority_for(idle_vm.vcpus[0]) == Priority.UNDER


class TestNewVmPoolParameter:
    def test_vcpus_land_in_requested_pool(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 5 * MS)
        vm = machine.new_vm("vm", 2, pool=pool)
        for vcpu in vm.vcpus:
            assert vcpu.pool is pool
        assert len(machine.default_pool.vcpus) == 0
