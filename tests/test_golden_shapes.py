"""Golden regression snapshots of the paper's headline curve shapes.

The committed JSON files under ``tests/golden/`` pin the numeric
output of the shape-critical experiments — Fig. 2b (heterogeneous-IO
latency monotone in quantum), Fig. 2d (LLCF ordering: the 90 ms
quantum wins), and S1–S5 (AQL_Sched at least as good as Xen).  A
future perf PR that silently bends these curves fails here; if the
shift is intentional, regenerate the snapshots with

    pytest tests/test_golden_shapes.py --update-golden

Each file carries its own relative tolerance; the qualitative shape
assertions are unconditional (no tolerance can excuse a reversed
ordering).
"""

import json
import math
from pathlib import Path

import pytest

from repro.baselines import AqlPolicy, XenCredit
from repro.core.calibration import measure_calibration_cell
from repro.exec import Cell, SweepRunner
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.hardware.specs import i7_3770
from repro.sim.units import MS

GOLDEN_DIR = Path(__file__).parent / "golden"

FIG2_QUANTA = (1, 30, 90)
SCENARIO_NAMES = ("S1", "S2", "S3", "S4", "S5")


def _compute_fig2_shapes() -> dict:
    """Normalised (30 ms = 1.0) series for the two shape-bearing panels."""
    kinds = ("io_hetero", "llcf")
    cells = [
        Cell(
            measure_calibration_cell,
            dict(
                kind=kind, quantum_ms=quantum_ms, vcpus_per_pcpu=4,
                spec=i7_3770(), warmup_ns=500 * MS, measure_ns=1500 * MS,
                seed=3,
            ),
            label=f"golden:{kind}:{quantum_ms}ms",
        )
        for kind in kinds
        for quantum_ms in FIG2_QUANTA
    ]
    values = SweepRunner().run(cells)
    raw = {
        (kind, quantum_ms): value
        for (kind, quantum_ms), value in zip(
            [(k, q) for k in kinds for q in FIG2_QUANTA], values
        )
    }
    return {
        kind: {
            str(q): raw[(kind, q)] / raw[(kind, 30)] for q in FIG2_QUANTA
        }
        for kind in kinds
    }


def _compute_scenario_shapes() -> dict:
    """Per-placement AQL/Xen normalised values for S1–S5."""
    cells = [
        Cell(
            run_scenario,
            dict(
                scenario=SCENARIOS[name], policy=policy,
                warmup_ns=1000 * MS, measure_ns=1500 * MS, seed=1,
            ),
            label=f"golden:{name}:{policy.name}",
        )
        for name in SCENARIO_NAMES
        for policy in (XenCredit(), AqlPolicy())
    ]
    runs = SweepRunner().run(cells)
    shapes = {}
    for i, name in enumerate(SCENARIO_NAMES):
        xen, aql = runs[2 * i], runs[2 * i + 1]
        normalized = {
            key: aql.by_placement[key] / xen.by_placement[key]
            for key in sorted(xen.by_placement)
        }
        shapes[name] = {
            "normalized": normalized,
            "mean": sum(normalized.values()) / len(normalized),
        }
    return shapes


def _check_or_update(
    path: Path, computed: dict, tolerance: float, update: bool
) -> dict:
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"tolerance": tolerance, "values": computed},
            indent=2, sort_keys=True,
        ) + "\n")
        return {"tolerance": tolerance, "values": computed}
    if not path.exists():
        pytest.fail(
            f"golden snapshot {path} missing — run "
            "`pytest tests/test_golden_shapes.py --update-golden`"
        )
    return json.loads(path.read_text())


def _assert_close(golden, computed, tolerance, trail=""):
    """Recursively compare numeric leaves within relative tolerance."""
    if isinstance(golden, dict):
        assert isinstance(computed, dict) and set(golden) == set(computed), (
            f"golden structure changed at {trail or 'root'}: "
            f"{sorted(golden)} vs {sorted(computed)}"
        )
        for key in golden:
            _assert_close(
                golden[key], computed[key], tolerance, f"{trail}/{key}"
            )
        return
    assert math.isclose(computed, golden, rel_tol=tolerance), (
        f"{trail}: {computed:.4f} drifted from golden {golden:.4f} "
        f"(tolerance {tolerance:.0%}) — if intentional, rerun with "
        "--update-golden"
    )


class TestFig2GoldenShapes:
    @pytest.fixture(scope="class")
    def computed(self):
        return _compute_fig2_shapes()

    def test_matches_snapshot(self, computed, update_golden):
        golden = _check_or_update(
            GOLDEN_DIR / "fig2_shapes.json", computed,
            tolerance=0.15, update=update_golden,
        )
        _assert_close(golden["values"], computed, golden["tolerance"])

    def test_io_hetero_latency_monotone_in_quantum(self, computed):
        # Fig. 2b: heterogeneous-IO latency only degrades as the
        # quantum grows — no tolerance can excuse a reversal
        series = computed["io_hetero"]
        assert series["1"] < series["30"] <= series["90"] * 1.02

    def test_llcf_ordering(self, computed):
        # Fig. 2d: LLCF wants the big quantum (90 < 30 < 1)
        series = computed["llcf"]
        assert series["90"] < series["30"] < series["1"]


class TestScenarioGoldenShapes:
    @pytest.fixture(scope="class")
    def computed(self):
        return _compute_scenario_shapes()

    def test_matches_snapshot(self, computed, update_golden):
        golden = _check_or_update(
            GOLDEN_DIR / "scenarios_aql_vs_xen.json", computed,
            tolerance=0.12, update=update_golden,
        )
        _assert_close(golden["values"], computed, golden["tolerance"])

    def test_aql_never_loses_to_xen_on_average(self, computed):
        # the paper's S1–S5 claim: AQL_Sched >= Xen per scenario
        for name in SCENARIO_NAMES:
            assert computed[name]["mean"] <= 1.02, (
                f"{name}: AQL mean {computed[name]['mean']:.3f} lost to Xen"
            )
