"""Crash consistency: SIGKILL a sweep mid-run, resume, lose nothing.

The headline guarantee of the execution engine (DESIGN.md §14): a run
killed at *any* cell boundary resumes from its checkpoint journal and
folds to the byte-identical result of an uninterrupted run, with no
completed cell executed twice.  These tests kill a real process —
``python -m tests.engine_cells`` with ``REPRO_ENGINE_KILL_AFTER=N``
SIGKILLs itself right after the Nth checkpoint is durable — at several
randomized (but seeded) cell boundaries, then resume and verify:

* the folded results pickle is byte-identical to the uninterrupted
  run's;
* the journal after the kill holds exactly N cells, and the resumed
  run's event log reports exactly those N as ``resumed`` — zero
  re-executions of completed work;
* the combined event log (kill segment + resume segment) passes the
  stream contract validator.
"""

import json
import os
import pickle
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import read_event_log, validate_events
from repro.exec.checkpoint import CheckpointJournal

REPO_ROOT = Path(__file__).resolve().parent.parent

CELLS = 8
JOBS = 2

#: randomized kill points, seeded so failures reproduce: at least
#: three distinct cell boundaries strictly inside the sweep
KILL_POINTS = sorted(random.Random(20260808).sample(range(1, CELLS), 3))


def drive(
    run_root: Path, fold_out: Path, kill_after=None, jobs=JOBS, extra=()
):
    """One ``tests.engine_cells`` sweep in a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_ENGINE_KILL_AFTER", None)
    env.pop("REPRO_JOBS", None)
    env.pop("REPRO_SERVE", None)
    if kill_after is not None:
        env["REPRO_ENGINE_KILL_AFTER"] = str(kill_after)
    return subprocess.run(
        [
            sys.executable, "-m", "tests.engine_cells",
            "--run-root", str(run_root),
            "--cells", str(CELLS),
            "--jobs", str(jobs),
            "--fold-out", str(fold_out),
            *extra,
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def the_run_dir(run_root: Path) -> Path:
    runs = [p for p in run_root.iterdir() if p.is_dir()]
    assert len(runs) == 1, f"expected one run dir, found {runs}"
    return runs[0]


def journalled_cells(run_root: Path) -> list[dict]:
    journal = CheckpointJournal(the_run_dir(run_root) / "journal.jsonl")
    return [r for r in journal.load() if r.get("kind") == "cell"]


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    """The reference: one clean run's folded pickle bytes."""
    root = tmp_path_factory.mktemp("clean")
    fold = root / "fold.pkl"
    proc = drive(root / "runs", fold, kill_after=None)
    assert proc.returncode == 0, proc.stderr
    return fold.read_bytes()


@pytest.mark.parametrize("kill_after", KILL_POINTS)
def test_kill_and_resume_is_byte_identical(
    tmp_path, uninterrupted, kill_after
):
    run_root = tmp_path / "runs"
    fold = tmp_path / "fold.pkl"

    # ---- the kill: SIGKILL right after checkpoint N is durable -----
    killed = drive(run_root, fold, kill_after=kill_after)
    assert killed.returncode == -signal.SIGKILL, (
        f"expected SIGKILL death, got rc={killed.returncode}\n"
        f"{killed.stderr}"
    )
    assert not fold.exists(), "a killed run must not publish a fold"
    journal = journalled_cells(run_root)
    assert len(journal) == kill_after, (
        "journal must hold exactly the cells checkpointed before the "
        f"kill: expected {kill_after}, found {len(journal)}"
    )

    # ---- the resume: same sweep, same run root ---------------------
    resumed = drive(run_root, fold, kill_after=None)
    assert resumed.returncode == 0, resumed.stderr
    assert fold.read_bytes() == uninterrupted, (
        "resumed fold must be byte-identical to the uninterrupted run"
    )

    # ---- no completed cell executed twice (via the event log) ------
    records = read_event_log(the_run_dir(run_root) / "events.jsonl")
    assert validate_events(records) == []
    segments_resumed = [
        r for r in records
        if r.get("kind") == "cell_finished" and r.get("outcome") == "resumed"
    ]
    segments_ran = [
        r for r in records
        if r.get("kind") == "cell_finished" and r.get("outcome") == "ran"
    ]
    journalled_keys = {record["key"] for record in journal}
    resumed_keys = {r["key"] for r in segments_resumed}
    assert resumed_keys == journalled_keys, (
        "the resume must replay exactly the journalled cells"
    )
    # every key executed at most once across the whole history
    ran_keys = [r["key"] for r in segments_ran]
    assert len(ran_keys) == len(set(ran_keys)), (
        f"some cell executed twice: {ran_keys}"
    )
    assert len(set(ran_keys) & journalled_keys) == kill_after, (
        "the kill-run's executed cells are the journalled ones"
    )
    # the resume segment executed only what was left
    assert len(segments_resumed) == kill_after
    assert len(ran_keys) == CELLS


def test_kill_points_cover_distinct_boundaries():
    """The suite genuinely exercises >= 3 different cell boundaries."""
    assert len(set(KILL_POINTS)) >= 3
    assert all(1 <= k < CELLS for k in KILL_POINTS)


def test_second_resume_is_pure_replay(tmp_path, uninterrupted):
    """Resuming a *finished* run re-executes nothing at all."""
    run_root = tmp_path / "runs"
    fold = tmp_path / "fold.pkl"
    first = drive(run_root, fold, kill_after=None)
    assert first.returncode == 0, first.stderr

    again = drive(run_root, fold, kill_after=None)
    assert again.returncode == 0, again.stderr
    assert fold.read_bytes() == uninterrupted
    records = read_event_log(the_run_dir(run_root) / "events.jsonl")
    assert validate_events(records) == []
    outcomes = [
        r["outcome"] for r in records if r.get("kind") == "cell_finished"
    ]
    assert outcomes.count("ran") == CELLS  # the first run only
    assert outcomes.count("resumed") == CELLS  # the second, entirely


def test_worker_crash_dumps_a_valid_flight_record(tmp_path):
    """A worker SIGKILLed mid-sweep (pool crash, parent survives) must
    leave a flight-recorder dump that the ring-mode validator accepts,
    tagged with the crash reason."""
    from repro.ops import read_status

    run_root = tmp_path / "runs"
    fold = tmp_path / "fold.pkl"
    crashed = drive(run_root, fold, extra=["--die-at", "3"])
    assert crashed.returncode == 3, (
        f"expected the driver's worker-crash exit code 3, got "
        f"rc={crashed.returncode}\n{crashed.stderr}"
    )
    assert not fold.exists(), "a crashed run must not publish a fold"

    run_dir = the_run_dir(run_root)
    dumps = sorted(run_dir.glob("flightrec-*.jsonl"))
    assert dumps, f"no flight-recorder dump in {run_dir}"
    records = read_event_log(dumps[-1])
    assert records, "flight-recorder dump must not be empty"
    assert validate_events(records, partial=True, ring=True) == [], (
        "flight-recorder dump must pass the ring-mode validator"
    )
    meta = json.loads(dumps[-1].with_suffix(".meta.json").read_text())
    assert meta["reason"] == "interrupted:worker-crash"
    assert meta["events"] == len(records)

    # status.json was rewritten on the Interrupted trigger and agrees
    status = read_status(run_dir / "status.json")
    assert status["interrupted"] == "worker-crash"


def test_status_json_consistent_with_journal(tmp_path, uninterrupted):
    """status.json (rewritten on every checkpoint) never claims more
    progress than the journal holds — after a SIGKILL and again after
    the clean resume."""
    from repro.ops import read_status

    kill_after = KILL_POINTS[0]
    run_root = tmp_path / "runs"
    fold = tmp_path / "fold.pkl"

    killed = drive(run_root, fold, kill_after=kill_after)
    assert killed.returncode == -signal.SIGKILL, killed.stderr
    journal_lines = len(journalled_cells(run_root))
    status = read_status(the_run_dir(run_root) / "status.json")
    checkpointed = status["cells"]["checkpointed"]
    # the status write and the journal fsync are not one atomic step:
    # the kill can land between them, so allow a one-cell skew — but
    # status must never run AHEAD of the durable journal
    assert checkpointed <= journal_lines <= checkpointed + 1, (
        f"status.json claims {checkpointed} checkpointed cells but the "
        f"journal holds {journal_lines}"
    )

    resumed = drive(run_root, fold, kill_after=None)
    assert resumed.returncode == 0, resumed.stderr
    assert fold.read_bytes() == uninterrupted
    journal_lines = len(journalled_cells(run_root))
    status = read_status(the_run_dir(run_root) / "status.json")
    assert status["cells"]["checkpointed"] == journal_lines == CELLS
    assert status["cells"]["done"] == CELLS
    assert status["interrupted"] is None
    assert status["sweeps_finished"] == 1
    assert status["phase"] == "fold"  # the last phase a clean run enters


def test_killed_run_leaves_no_temp_files(tmp_path):
    """SIGKILL mid-sweep never strands atomic-write temp files for
    the resume to trip over (they are swept on run-dir open)."""
    run_root = tmp_path / "runs"
    fold = tmp_path / "fold.pkl"
    killed = drive(run_root, fold, kill_after=2)
    assert killed.returncode == -signal.SIGKILL
    resumed = drive(run_root, fold, kill_after=None)
    assert resumed.returncode == 0, resumed.stderr
    stranded = list(run_root.rglob(".tmp-*"))
    assert stranded == []
