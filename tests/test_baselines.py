"""Tests for the scheduling policies (Xen, fixed, vSlicer, vTurbo, AQL)."""

import pytest

from repro.baselines import (
    AqlPolicy,
    FixedQuantum,
    Microsliced,
    VSlicer,
    VTurbo,
    XenCredit,
)
from repro.baselines.base import PolicyContext
from repro.core.types import VCpuType
from repro.hypervisor.machine import Machine
from repro.sim.units import MS
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import lolcf_profile


def io_scenario(seed=0):
    """2 IO VMs + 6 CPU VMs on a 2-pCPU pool, with oracle types."""
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
    ctx = PolicyContext(pool=pool)
    for i in range(2):
        vm = machine.new_vm(f"io{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        IoWorkload.exclusive(f"io{i}").install(machine, vm)
        ctx.oracle_types[vm.vcpus[0].vcpu_id] = VCpuType.IOINT
    for i in range(6):
        vm = machine.new_vm(f"cpu{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        CpuBurnWorkload(f"c{i}", lolcf_profile(machine.spec)).install(machine, vm)
        ctx.oracle_types[vm.vcpus[0].vcpu_id] = VCpuType.LOLCF
    return machine, ctx


class TestXenCredit:
    def test_sets_default_quantum(self):
        machine, ctx = io_scenario()
        XenCredit().setup(machine, ctx)
        assert all(p.quantum_ns == 30 * MS for p in machine.pools)


class TestFixedQuantum:
    def test_sets_quantum_everywhere(self):
        machine, ctx = io_scenario()
        FixedQuantum(5 * MS).setup(machine, ctx)
        assert all(p.quantum_ns == 5 * MS for p in machine.pools)

    def test_microsliced_default_is_1ms(self):
        assert Microsliced().quantum_ns == 1 * MS
        assert Microsliced().name == "microsliced"

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            FixedQuantum(0)


class TestVSlicer:
    def test_overrides_only_io_vcpus(self):
        machine, ctx = io_scenario()
        VSlicer().setup(machine, ctx)
        for vcpu in machine.all_vcpus:
            if ctx.oracle_types[vcpu.vcpu_id] == VCpuType.IOINT:
                assert vcpu.quantum_override == 1 * MS
            else:
                assert vcpu.quantum_override is None

    def test_no_io_vcpus_is_noop(self):
        machine, ctx = io_scenario()
        ctx.oracle_types = {
            k: VCpuType.LOLCF for k in ctx.oracle_types
        }
        VSlicer().setup(machine, ctx)
        assert all(v.quantum_override is None for v in machine.all_vcpus)


class TestVTurbo:
    def test_builds_turbo_pool(self):
        machine, ctx = io_scenario()
        VTurbo().setup(machine, ctx)
        by_name = {p.name: p for p in machine.pools}
        assert by_name["turbo"].quantum_ns == 1 * MS
        turbo_vcpus = by_name["turbo"].vcpus
        assert all(
            ctx.oracle_types[v.vcpu_id] == VCpuType.IOINT for v in turbo_vcpus
        )
        assert len(turbo_vcpus) == 2
        assert by_name["normal"].quantum_ns == 30 * MS
        machine.run(100 * MS)  # still runs

    def test_no_io_is_noop(self):
        machine, ctx = io_scenario()
        ctx.oracle_types = {k: VCpuType.LOLCF for k in ctx.oracle_types}
        pools_before = len(machine.pools)
        VTurbo().setup(machine, ctx)
        assert len(machine.pools) == pools_before


class TestAqlPolicy:
    def test_attaches_manager(self):
        machine, ctx = io_scenario()
        policy = AqlPolicy()
        policy.setup(machine, ctx)
        assert policy.manager is not None
        machine.run(200 * MS)
        assert policy.manager.decisions >= 1

    def test_oracle_name(self):
        assert AqlPolicy(oracle=True).name == "aql-oracle"

    def test_uniform_name(self):
        assert AqlPolicy(uniform_quantum_ns=1 * MS).name == "aql-uniform-1ms"


class TestPolicyContext:
    def test_vcpus_of_type(self):
        machine, ctx = io_scenario()
        io_vcpus = ctx.vcpus_of_type(machine, VCpuType.IOINT)
        assert len(io_vcpus) == 2
