"""Tests for the Credit scheduler policy pieces (run queue, credits)."""

import pytest

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.credit import CreditParams, RunQueue
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import Priority, VCpuState
from repro.sim.units import MS, SEC


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


def add_hog(machine, vm):
    vm.guest.add_thread(GuestThread(f"{vm.name}.hog", hog_body))


class TestRunQueue:
    def make_vcpu(self, machine, priority):
        vm = machine.new_vm(f"vm{priority}", 1)
        vcpu = vm.vcpus[0]
        vcpu.priority = priority
        return vcpu

    def test_priority_order(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        over = self.make_vcpu(machine, Priority.OVER)
        boost = self.make_vcpu(machine, Priority.BOOST)
        under = self.make_vcpu(machine, Priority.UNDER)
        for vcpu in (over, under, boost):
            runq.push(vcpu)
        assert runq.pop_best() is boost
        assert runq.pop_best() is under
        assert runq.pop_best() is over
        assert runq.pop_best() is None

    def test_fifo_within_priority(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        a = self.make_vcpu(machine, Priority.UNDER)
        b = self.make_vcpu(machine, Priority.UNDER)
        runq.push(a)
        runq.push(b)
        assert runq.pop_best() is a

    def test_push_front(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        a = self.make_vcpu(machine, Priority.UNDER)
        b = self.make_vcpu(machine, Priority.UNDER)
        runq.push(a)
        runq.push(b, front=True)
        assert runq.pop_best() is b

    def test_remove(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        a = self.make_vcpu(machine, Priority.UNDER)
        runq.push(a)
        assert runq.remove(a) is True
        assert runq.remove(a) is False
        assert len(runq) == 0

    def test_drain(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        vcpus = [self.make_vcpu(machine, Priority.OVER) for _ in range(3)]
        for vcpu in vcpus:
            runq.push(vcpu)
        assert set(runq.drain()) == set(vcpus)
        assert len(runq) == 0

    def test_best_priority(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        assert runq.best_priority() is None
        runq.push(self.make_vcpu(machine, Priority.OVER))
        assert runq.best_priority() == Priority.OVER

    def test_refresh_priorities_rebuckets(self):
        machine = Machine(seed=0)
        runq = RunQueue()
        a = self.make_vcpu(machine, Priority.OVER)
        a.credit = 100  # now deserves UNDER
        runq.push(a)
        runq.refresh_priorities(
            lambda v: Priority.UNDER if v.credit > 0 else Priority.OVER
        )
        assert a.priority == Priority.UNDER
        assert runq.best_priority() == Priority.UNDER


class TestCreditAccounting:
    def test_burn_rate(self):
        params = CreditParams()
        # 100 credits per 10 ms: a full 30 ms accounting period of run
        # time burns 300
        assert params.burn_rate_per_ns * 30 * MS == pytest.approx(300.0)

    def test_equal_weights_share_equally(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        vms = []
        for i in range(4):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            add_hog(machine, vm)
            vms.append(vm)
        machine.run(2 * SEC)
        shares = [vm.vcpus[0].run_ns_total for vm in vms]
        for share in shares:
            assert share == pytest.approx(0.5 * SEC, rel=0.1)

    def test_weight_proportional_sharing(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        heavy = machine.new_vm("heavy", 1, weight=512)
        light = machine.new_vm("light", 1, weight=256)
        for vm in (heavy, light):
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            add_hog(machine, vm)
        machine.run(3 * SEC)
        ratio = heavy.vcpus[0].run_ns_total / light.vcpus[0].run_ns_total
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_cap_limits_cpu(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        capped = machine.new_vm("capped", 1, cap=25)
        free = machine.new_vm("free", 1)
        for vm in (capped, free):
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            add_hog(machine, vm)
        machine.run(3 * SEC)
        # cap enforcement is accounting-period granular (like Xen), so
        # a 25% cap lands in [0.15, 0.40] instead of the uncapped 0.50
        capped_share = capped.vcpus[0].run_ns_total / (3 * SEC)
        assert 0.15 < capped_share < 0.40

    def test_credit_clipped(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("idle", 1)  # never runs: would hoard credit
        add_hog(machine, vm)  # keep it runnable but alone on 8 cores
        machine.run(2 * SEC)
        assert vm.vcpus[0].credit <= machine.params.credit_clip

    def test_vm_validation(self):
        machine = Machine(seed=0)
        with pytest.raises(ValueError):
            machine.new_vm("bad", 0)
        with pytest.raises(ValueError):
            machine.new_vm("bad", 1, weight=0)
        with pytest.raises(ValueError):
            machine.new_vm("bad", 1, cap=0)


class TestWorkConserving:
    def test_idle_pcpu_steals_work(self):
        """Two pCPUs, three hog vCPUs: both pCPUs stay ~100% busy."""
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        vms = []
        for i in range(3):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            add_hog(machine, vm)
            vms.append(vm)
        machine.run(2 * SEC)
        total_run = sum(vm.vcpus[0].run_ns_total for vm in vms)
        assert total_run == pytest.approx(2 * 2 * SEC, rel=0.05)

    def test_three_hogs_on_two_pcpus_fair(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        vms = []
        for i in range(3):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            add_hog(machine, vm)
            vms.append(vm)
        machine.run(3 * SEC)
        shares = [vm.vcpus[0].run_ns_total / (3 * SEC) for vm in vms]
        for share in shares:
            assert share == pytest.approx(2 / 3, rel=0.15)
