"""Focused tests for the machine's phase interpreter edge cases."""

import pytest

from repro.guest.barrier import SpinBarrier
from repro.guest.phases import (
    Acquire,
    BarrierWait,
    Compute,
    Exit,
    Release,
    Sleep,
    WaitEvent,
)
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread, ThreadState
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import VCpuState
from repro.sim.units import MS, SEC


class TestExitHandling:
    def test_explicit_exit_phase(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)

        def body(thread):
            yield Compute(1_000)
            yield Exit()
            yield Compute(10**12)  # never reached

        t = GuestThread("t", body)
        vm.guest.add_thread(t)
        machine.run(10 * MS)
        assert t.done
        assert t.instructions_retired < 10_000

    def test_vcpu_blocks_after_last_thread_exits(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)

        def body(thread):
            yield Compute(1_000)

        vm.guest.add_thread(GuestThread("t", body))
        machine.run(10 * MS)
        assert vm.vcpus[0].state == VCpuState.BLOCKED

    def test_sibling_continues_after_exit(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)

        def short(thread):
            yield Compute(1_000)

        def long_running(thread):
            while True:
                yield Compute(1_000_000)

        vm.guest.add_thread(GuestThread("short", short))
        survivor = GuestThread("long", long_running)
        vm.guest.add_thread(survivor)
        machine.run(50 * MS)
        machine.sync()
        assert survivor.run_ns > 40 * MS


class TestWaitEventEdges:
    def test_two_waiters_on_one_port_is_an_error(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")

        def waiter(thread):
            yield WaitEvent(port)

        vm.guest.add_thread(GuestThread("a", waiter))
        vm.guest.add_thread(GuestThread("b", waiter))
        with pytest.raises(RuntimeError, match="one waiter per port"):
            machine.run(10 * MS)

    def test_same_thread_rewaiting_is_fine(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        handled = []

        def server(thread):
            while True:
                wait = WaitEvent(port)
                yield wait
                handled.append(wait.payload)

        vm.guest.add_thread(GuestThread("s", server))
        machine.run(5 * MS)
        port.post(1)
        machine.run(5 * MS)
        port.post(2)
        machine.run(5 * MS)
        assert handled == [1, 2]


class TestSpinResumption:
    def test_preempted_spinner_resumes_spinning(self):
        """A spinner preempted mid-spin picks the spin back up on its
        next dispatch and acquires once the lock frees."""
        machine = Machine(seed=0, default_quantum_ns=5 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 5 * MS)
        vm = machine.new_vm("vm", 2, weight=512, pool=pool)
        lock = SpinLock("l")
        acquired = []

        def holder(thread):
            yield Acquire(lock)
            yield Compute(60_000_000)  # ~20 ms: several quanta
            yield Release(lock)

        def waiter(thread):
            yield Compute(3_000_000)
            yield Acquire(lock)
            acquired.append(machine.sim.now)
            yield Release(lock)

        vm.guest.add_thread(GuestThread("h", holder), vm.vcpus[0])
        w = GuestThread("w", waiter)
        vm.guest.add_thread(w, vm.vcpus[1])
        machine.run(200 * MS)
        assert acquired, "waiter never got the lock"
        assert w.spin_ns > 0

    def test_barrier_passing_after_redispatch(self):
        """A barrier released while a waiter is descheduled is noticed
        at the waiter's next dispatch."""
        machine = Machine(seed=0, default_quantum_ns=5 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 5 * MS)
        vm = machine.new_vm("vm", 2, weight=512, pool=pool)
        barrier = SpinBarrier("b", 2)
        rounds = []

        def worker(thread):
            for _ in range(3):
                yield Compute(2_000_000)
                yield BarrierWait(barrier)
                rounds.append((thread.name, machine.sim.now))

        vm.guest.add_thread(GuestThread("a", worker), vm.vcpus[0])
        vm.guest.add_thread(GuestThread("b", worker), vm.vcpus[1])
        machine.run(300 * MS)
        assert barrier.rounds_completed == 3
        assert len(rounds) == 6


class TestSleepEdges:
    def test_zero_sleep_still_blocks_one_turn(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        times = []

        def napper(thread):
            yield Compute(1_000)
            times.append(machine.sim.now)
            yield Sleep(0)
            times.append(machine.sim.now)

        vm.guest.add_thread(GuestThread("n", napper))
        machine.run(10 * MS)
        assert len(times) == 2
        assert times[1] >= times[0]

    def test_many_sleepers_wake_independently(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 4, weight=1024)
        wake_times = {}

        def napper(thread, delay):
            yield Sleep(delay)
            wake_times[thread.name] = machine.sim.now

        for i, delay in enumerate((3 * MS, 7 * MS, 11 * MS, 2 * MS)):
            vm.guest.add_thread(
                GuestThread(
                    f"n{i}", lambda t, d=delay: napper(t, d)
                ),
                vm.vcpus[i],
            )
        machine.run(50 * MS)
        assert wake_times["n3"] < wake_times["n0"] < wake_times["n1"]
        assert wake_times["n1"] < wake_times["n2"]
