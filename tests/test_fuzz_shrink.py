"""The acceptance criterion: a deliberately injected scheduler bug is
caught by the fixed-seed corpus and shrinks to a trivially small,
replayable scenario."""

import pytest

from repro.fuzz import (
    FuzzScenario,
    check_invariants,
    failure_signature,
    run_campaign,
    run_scenario_fuzz,
    shrink,
)


@pytest.fixture(scope="module")
def caught(tmp_path_factory):
    """A 3-case corpus with the skip-refill bug injected everywhere."""
    out_dir = tmp_path_factory.mktemp("repros")
    campaign = run_campaign(
        3, seed=0, out_dir=out_dir, inject="skip_credit_refill"
    )
    return campaign, out_dir


class TestInjectedBugIsCaught:
    def test_corpus_catches_the_bug(self, caught):
        campaign, _ = caught
        assert campaign.failures, "skip_credit_refill escaped the corpus"
        for case in campaign.failures:
            assert "credit_fairness" in {
                v.invariant for v in case.violations
            }

    def test_shrinks_to_at_most_four_events(self, caught):
        campaign, _ = caught
        best = min(
            len(case.shrunk.scenario.timeline)
            for case in campaign.failures
            if case.shrunk is not None
        )
        assert best <= 4

    def test_repro_file_replays_the_violation(self, caught):
        campaign, out_dir = caught
        case = campaign.failures[0]
        assert case.repro_path is not None and case.repro_path.exists()
        scenario = FuzzScenario.load(case.repro_path)
        assert scenario.inject == "skip_credit_refill"
        violations = check_invariants(run_scenario_fuzz(scenario))
        assert "credit_fairness" in {v.invariant for v in violations}

    def test_shrunk_scenario_still_in_signature(self, caught):
        campaign, _ = caught
        case = campaign.failures[0]
        assert case.shrunk is not None
        assert case.shrunk.signature == failure_signature(case.violations)
        assert case.shrunk.evaluations > 0
        assert case.shrunk.steps, "shrinking removed nothing at all"


class TestShrinkMechanics:
    def test_nothing_to_shrink_rejected(self):
        from repro.fuzz import generate_scenario

        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink(generate_scenario(0), [])

    def test_budget_is_respected(self, caught):
        campaign, _ = caught
        case = campaign.failures[0]
        result = shrink(
            case.scenario, case.violations, max_evaluations=2
        )
        assert result.evaluations <= 2
