"""Test-suite configuration.

Hypothesis runs derandomized so the suite is reproducible: the
property tests express *universal* invariants (occupancy conservation,
cursor ranges, clustering fairness, scheduler structure), so a failing
example is always a real bug worth a stable reproduction, never
test-run noise.

``--update-golden`` rewrites the committed numeric snapshots under
``tests/golden/`` from the current simulator output (see
``tests/test_golden_shapes.py``); without it, the golden tests compare
against the committed values.
"""

import pytest
from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from the current simulator output",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
