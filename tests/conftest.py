"""Test-suite configuration.

Hypothesis runs derandomized so the suite is reproducible: the
property tests express *universal* invariants (occupancy conservation,
cursor ranges, clustering fairness, scheduler structure), so a failing
example is always a real bug worth a stable reproduction, never
test-run noise.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
