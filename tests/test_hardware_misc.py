"""Tests for machine specs, topology, PMU counters and PLE detection."""

import pytest

from repro.hardware.cache import SegmentResult
from repro.hardware.pmu import PmuCounters
from repro.hardware.ple import PleDetector
from repro.hardware.specs import KB, MB, CacheSpec, MachineSpec, i7_3770, xeon_e5_4603
from repro.hardware.topology import Topology


class TestSpecs:
    def test_i7_matches_paper_table2(self):
        spec = i7_3770()
        assert spec.sockets == 1
        assert spec.cores_per_socket == 8
        assert spec.llc.capacity_bytes == 8 * MB
        assert spec.l2.capacity_bytes == 256 * KB
        assert spec.l1.capacity_bytes == 32 * KB

    def test_xeon_is_four_sockets(self):
        spec = xeon_e5_4603()
        assert spec.sockets == 4
        assert spec.total_cores == 16

    def test_cycle_ns(self):
        spec = i7_3770()
        assert spec.cycle_ns == pytest.approx(1 / 3.4)

    def test_cache_spec_validation(self):
        with pytest.raises(ValueError):
            CacheSpec(0)
        with pytest.raises(ValueError):
            CacheSpec(100, line_bytes=64)  # not a whole number of lines

    def test_cache_lines(self):
        assert CacheSpec(1 * MB).lines == 1 * MB // 64

    def test_machine_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("x", sockets=0, cores_per_socket=4, freq_ghz=2.0)
        with pytest.raises(ValueError):
            MachineSpec("x", sockets=1, cores_per_socket=4, freq_ghz=0)


class TestTopology:
    def test_global_pcpu_ids_are_stable(self):
        topo = Topology(xeon_e5_4603())
        assert [p.cpu_id for p in topo.pcpus] == list(range(16))

    def test_sockets_share_one_llc(self):
        topo = Topology(xeon_e5_4603())
        for socket in topo.sockets:
            for pcpu in socket.pcpus:
                assert pcpu.socket is socket
        llcs = {id(s.llc) for s in topo.sockets}
        assert len(llcs) == 4  # one distinct LLC per socket

    def test_len_and_iter(self):
        topo = Topology(i7_3770())
        assert len(topo) == 8
        assert len(list(topo)) == 8


class TestPmu:
    def test_accumulate_and_delta(self):
        pmu = PmuCounters()
        pmu.add_segment(SegmentResult(instructions=100, llc_refs=10, llc_misses=2))
        snap = pmu.snapshot()
        pmu.add(instructions=50, llc_refs=5, llc_misses=1)
        delta = pmu.delta_since(snap)
        assert delta.instructions == pytest.approx(50)
        assert delta.llc_refs == pytest.approx(5)
        assert delta.llc_misses == pytest.approx(1)

    def test_snapshot_is_immutable_copy(self):
        pmu = PmuCounters()
        snap = pmu.snapshot()
        pmu.add(10, 1, 0)
        assert snap.instructions == 0


class TestPle:
    def test_one_exit_per_window(self):
        ple = PleDetector(window_ns=10_000)
        ple.note_spin(35_000)
        assert ple.exits == 3

    def test_residual_accumulates(self):
        ple = PleDetector(window_ns=10_000)
        ple.note_spin(6_000)
        assert ple.exits == 0
        ple.note_spin(6_000)
        assert ple.exits == 1

    def test_lock_event_fallback(self):
        ple = PleDetector()
        ple.note_lock_event(5)
        assert ple.exits == 5

    def test_delta(self):
        ple = PleDetector(window_ns=1_000)
        ple.note_spin(5_000)
        snap = ple.snapshot()
        ple.note_spin(3_000)
        assert ple.delta_since(snap) == 3

    def test_negative_spin_ignored(self):
        ple = PleDetector()
        ple.note_spin(-5)
        assert ple.exits == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PleDetector(window_ns=0)
