"""The scenario generator: determinism, validity, coverage steering."""

import json

from repro.fuzz import CoverageMap, generate_scenario, scenario_problems
from repro.fuzz.scenario import POLICY_NAMES


class TestDeterminism:
    def test_same_seed_same_scenario(self):
        a = generate_scenario(42)
        b = generate_scenario(42)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_same_seed_same_scenario_under_coverage(self):
        cov = CoverageMap()
        cov.hit("policy:xen", 5)
        cov.hit("event:vm_boot", 3)
        a = generate_scenario(42, coverage=cov)
        b = generate_scenario(42, coverage=cov)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        scenarios = {
            json.dumps(generate_scenario(seed).to_json(), sort_keys=True)
            for seed in range(10)
        }
        assert len(scenarios) > 1


class TestValidity:
    def test_every_generated_scenario_is_statically_valid(self):
        for seed in range(60):
            scenario = generate_scenario(seed)
            assert scenario_problems(scenario) == [], (seed, scenario)

    def test_generator_emits_same_instant_pairs(self):
        """Across enough seeds the dependent boot+phase pair appears —
        the tie-order contract is actually exercised."""
        found = False
        for seed in range(60):
            events = generate_scenario(seed).timeline.events
            times = [e.at_ns for e in events]
            if len(times) != len(set(times)):
                found = True
                break
        assert found, "no same-instant pair in 60 seeds"

    def test_injection_is_threaded_through(self):
        scenario = generate_scenario(1, inject="skip_credit_refill")
        assert scenario.inject == "skip_credit_refill"


class TestSteering:
    def test_weight_decays_with_hits(self):
        cov = CoverageMap()
        assert cov.weight("policy:xen") == 1.0
        cov.hit("policy:xen", 3)
        assert cov.weight("policy:xen") == 0.25

    def test_heavily_covered_policy_is_avoided(self):
        cov = CoverageMap()
        cov.hit("policy:xen", 10_000)
        picks = [
            generate_scenario(seed, coverage=cov).policy
            for seed in range(30)
        ]
        assert picks.count("xen") <= 2
        assert set(picks) - {"xen"}, "steering killed every other choice"

    def test_policy_restriction_respected(self):
        for seed in range(10):
            scenario = generate_scenario(seed, policies=("vturbo",))
            assert scenario.policy == "vturbo"
            assert scenario.policy in POLICY_NAMES
