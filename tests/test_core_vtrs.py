"""Tests for the online vCPU Type Recognition System."""

import pytest

from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile, lolcf_profile
from repro.workloads.spin import SpinWorkload


def single_pcpu_machine(seed=0):
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
    return machine, pool


def place(machine, pool, vm):
    for vcpu in vm.vcpus:
        machine.default_pool.remove_vcpu(vcpu)
        pool.add_vcpu(vcpu)


class TestLifecycle:
    def test_no_type_before_first_sample(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", llcf_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine)
        assert vtrs.type_of(vm.vcpus[0]) is None
        assert vtrs.cursor_averages(vm.vcpus[0])[VCpuType.LLCF] == 0.0

    def test_attach_is_idempotent(self):
        machine, _ = single_pcpu_machine()
        vtrs = VTRS(machine)
        vtrs.attach()
        vtrs.attach()
        machine.run(100 * MS)
        # one sampler every 30 ms, not two
        assert vtrs.periods_observed == 3

    def test_invalid_params(self):
        machine, _ = single_pcpu_machine()
        with pytest.raises(ValueError):
            VTRS(machine, window=0)
        with pytest.raises(ValueError):
            VTRS(machine, period_ns=0)

    def test_history_recording(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", llcf_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine, record_history=True).attach()
        machine.run(300 * MS)
        history = vtrs.history_of(vm.vcpus[0])
        assert len(history) >= 5
        time0, cursors0 = history[0]
        assert isinstance(cursors0, dict)


class TestRecognition:
    def test_llcf_detected(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", llcf_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine).attach()
        machine.run(500 * MS)
        assert vtrs.type_of(vm.vcpus[0]) == VCpuType.LLCF

    def test_llco_detected(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", llco_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine).attach()
        machine.run(500 * MS)
        assert vtrs.type_of(vm.vcpus[0]) == VCpuType.LLCO

    def test_lolcf_detected(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", lolcf_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine).attach()
        machine.run(500 * MS)
        assert vtrs.type_of(vm.vcpus[0]) == VCpuType.LOLCF

    def test_ioint_detected(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        IoWorkload.exclusive("io").install(machine, vm)
        vtrs = VTRS(machine).attach()
        machine.run(500 * MS)
        assert vtrs.type_of(vm.vcpus[0]) == VCpuType.IOINT

    def test_conspin_detected(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        vm = machine.new_vm("vm", 4, weight=1024)
        place(machine, pool, vm)
        SpinWorkload("spin", threads=4).install(machine, vm)
        vtrs = VTRS(machine).attach()
        machine.run(1 * SEC)
        for vcpu in vm.vcpus:
            assert vtrs.type_of(vcpu) == VCpuType.CONSPIN

    def test_type_follows_behaviour_change(self):
        """A vCPU that switches from LLCO to LoLCF behaviour is
        re-typed within a few windows (the reason vTRS is online)."""
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        spec = machine.spec
        phase_profiles = [llco_profile(spec), lolcf_profile(spec)]

        def chameleon(thread):
            # ~400 ms of trashing, then seconds of L2-resident compute
            yield Compute(220_000_000, profile=phase_profiles[0])
            yield Compute(10_000_000_000, profile=phase_profiles[1])

        vm.guest.add_thread(GuestThread("c", chameleon), vm.vcpus[0])
        vtrs = VTRS(machine).attach()
        machine.run(300 * MS)
        first = vtrs.type_of(vm.vcpus[0])
        machine.run(1500 * MS)
        second = vtrs.type_of(vm.vcpus[0])
        assert first == VCpuType.LLCO
        assert second == VCpuType.LOLCF


class TestEvidenceHandling:
    def test_idle_periods_do_not_pollute_window(self):
        """A vCPU sharing a pCPU 1:3 is descheduled for whole periods;
        those periods must not read as LoLCF."""
        machine, pool = single_pcpu_machine()
        target_vm = machine.new_vm("target", 1)
        place(machine, pool, target_vm)
        CpuBurnWorkload("t", llcf_profile(machine.spec)).install(
            machine, target_vm
        )
        for i in range(3):
            vm = machine.new_vm(f"d{i}", 1)
            place(machine, pool, vm)
            CpuBurnWorkload(f"d{i}", llco_profile(machine.spec)).install(
                machine, vm
            )
        vtrs = VTRS(machine).attach()
        machine.run(2 * SEC)
        assert vtrs.type_of(target_vm.vcpus[0]) == VCpuType.LLCF

    def test_fully_idle_vcpu_keeps_no_type(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("idle", 1)
        place(machine, pool, vm)
        vtrs = VTRS(machine).attach()
        machine.run(500 * MS)
        assert vtrs.type_of(vm.vcpus[0]) is None

    def test_window_length_respected(self):
        machine, pool = single_pcpu_machine()
        vm = machine.new_vm("vm", 1)
        place(machine, pool, vm)
        CpuBurnWorkload("w", lolcf_profile(machine.spec)).install(machine, vm)
        vtrs = VTRS(machine, window=4).attach()
        machine.run(1 * SEC)
        monitor = vtrs._monitors[vm.vcpus[0].vcpu_id]
        assert len(monitor.window) == 4
