"""Differential equivalence: optimized kernels vs a naive reference.

The fast-path kernels in :mod:`repro.sim.engine` (tuple heap, timer
wheel) must be *observationally identical* to the obviously-correct
scheduler: a sorted list popped from the front.  Hypothesis generates
schedules of ``at``/``after``/``cancel``/``run_until``/``step``
operations (including callbacks that schedule follow-up events
mid-run), and every kernel must produce the same fire order, fire
times, clock positions, ``peek_time`` answers and ``events_fired``
counts as the reference.

Two golden end-to-end checks extend the guarantee to the full system:
a fig6 scenario cell and a churn story must export byte-identical
metrics whether the machine runs on the heap-only or the timer-wheel
kernel.

The file also carries the regression tests for the kernel rework's
bug-fix satellites: ``step()`` re-entrancy, float truncation in
``at``/``after``, and the wheel's cancellation edge cases.
"""

from __future__ import annotations

import dataclasses
import json
from bisect import insort

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.units import MS, US

KERNELS = ("heap", "wheel")


# ----------------------------------------------------------------------
# the reference scheduler
# ----------------------------------------------------------------------
class ReferenceSimulator:
    """Sorted-list event loop — slow, simple, obviously correct.

    Mirrors the public surface of :class:`Simulator` that the
    differential driver exercises.  Entries are kept sorted by
    ``(time, seq)`` and popped from the front; cancellation is checked
    at fire time.
    """

    def __init__(self) -> None:
        self.now = 0
        self.events_fired = 0
        self._entries: list[tuple[int, int, Event]] = []
        self._seq = 0

    def at(self, time, fn, label=""):
        itime = int(time)
        if itime != time:
            raise SimulationError(f"non-integral time {time!r}")
        if itime < self.now:
            raise SimulationError(f"{itime} < now {self.now}")
        event = Event(itime, self._seq, fn, label)
        insort(self._entries, (itime, self._seq, event))
        self._seq += 1
        return event

    def after(self, delay, fn, label=""):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        idelay = int(delay)
        if idelay != delay:
            raise SimulationError(f"non-integral delay {delay!r}")
        return self.at(self.now + idelay, fn, label)

    def run_until(self, end_time: int) -> None:
        if end_time < self.now:
            raise SimulationError("run_until in the past")
        while self._entries and self._entries[0][0] <= end_time:
            time, _, event = self._entries.pop(0)
            if event.cancelled:
                continue
            self.now = time
            self.events_fired += 1
            event.fn()
        self.now = end_time

    def step(self):
        while self._entries:
            time, _, event = self._entries.pop(0)
            if event.cancelled:
                continue
            self.now = time
            self.events_fired += 1
            event.fn()
            return event
        return None

    def peek_time(self):
        for time, _, event in self._entries:
            if not event.cancelled:
                return time
        return None

    @property
    def pending(self) -> int:
        return sum(1 for _, _, e in self._entries if not e.cancelled)


# ----------------------------------------------------------------------
# differential driver
# ----------------------------------------------------------------------
def _apply_schedule(sim, ops) -> list:
    """Run one op schedule against ``sim``; return the observation trace."""
    trace: list = []
    handles: list[Event] = []

    def logger(label):
        def fn():
            trace.append(("fire", sim.now, label))

        return fn

    def chained(label, follow_delay):
        def fn():
            trace.append(("fire", sim.now, label))
            sim.after(follow_delay, logger(label + "+"), label + "+")

        return fn

    for op in ops:
        kind = op[0]
        if kind == "at":
            label = f"e{len(handles)}"
            handles.append(sim.at(sim.now + op[1], logger(label), label))
        elif kind == "after":
            label = f"e{len(handles)}"
            handles.append(sim.after(op[1], logger(label), label))
        elif kind == "chain":
            label = f"e{len(handles)}"
            handles.append(
                sim.at(sim.now + op[1], chained(label, op[2]), label)
            )
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run":
            sim.run_until(sim.now + op[1])
        elif kind == "step":
            event = sim.step()
            trace.append(("step", sim.now, None if event is None else event.label))
        trace.append(("state", sim.now, sim.peek_time(), sim.pending))
    # drain everything still pending (chains included) and settle
    sim.run_until(sim.now + 500 * MS)
    trace.append(("end", sim.now, sim.events_fired, sim.pending))
    return trace


#: deltas mix sub-slot, multi-slot, and beyond-the-64ms-horizon times so
#: schedules cross every wheel routing branch
_DELTA = st.one_of(
    st.integers(min_value=0, max_value=3 * US),
    st.integers(min_value=0, max_value=5 * MS),
    st.integers(min_value=0, max_value=150 * MS),
)

_OP = st.one_of(
    st.tuples(st.just("at"), _DELTA),
    st.tuples(st.just("after"), _DELTA),
    st.tuples(st.just("chain"), _DELTA, _DELTA),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("run"), _DELTA),
    st.tuples(st.just("step")),
)


@settings(max_examples=200)
@given(ops=st.lists(_OP, max_size=40))
def test_kernels_match_reference(ops):
    """Both kernels trace identically to the sorted-list reference."""
    reference = _apply_schedule(ReferenceSimulator(), ops)
    for kernel in KERNELS:
        assert _apply_schedule(Simulator(kernel=kernel), ops) == reference, kernel


@settings(max_examples=50)
@given(
    ops=st.lists(_OP, max_size=40),
    checkpoints=st.lists(st.integers(min_value=0, max_value=40 * MS), max_size=4),
)
def test_kernels_match_reference_with_chopped_runs(ops, checkpoints):
    """Equivalence holds when runs stop at arbitrary mid-wheel times."""
    ops = list(ops)
    for point in checkpoints:
        ops.append(("run", point))
    reference = _apply_schedule(ReferenceSimulator(), ops)
    for kernel in KERNELS:
        assert _apply_schedule(Simulator(kernel=kernel), ops) == reference, kernel


# ----------------------------------------------------------------------
# bug-fix satellites: step() re-entrancy, float truncation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", KERNELS)
def test_step_rejects_reentrancy(kernel):
    """A callback stepping the engine must fail loudly, not corrupt time."""
    sim = Simulator(kernel=kernel)
    failures: list[SimulationError] = []

    def reenter():
        try:
            sim.step()
        except SimulationError as exc:
            failures.append(exc)

    sim.at(5, reenter)
    sim.step()
    assert len(failures) == 1
    assert "re-entrant" in str(failures[0])
    # the guard is released: stepping afterwards works normally
    sim.at(10, lambda: None)
    event = sim.step()
    assert event is not None and sim.now == 10


@pytest.mark.parametrize("kernel", KERNELS)
def test_run_until_rejects_reentrancy(kernel):
    sim = Simulator(kernel=kernel)
    failures: list[SimulationError] = []

    def reenter():
        try:
            sim.run_until(sim.now + 5)
        except SimulationError as exc:
            failures.append(exc)

    sim.at(1, reenter)
    sim.run_until(10)
    assert len(failures) == 1


@pytest.mark.parametrize("kernel", KERNELS)
def test_at_and_after_reject_non_integral_times(kernel):
    sim = Simulator(kernel=kernel)
    with pytest.raises(SimulationError, match="non-integral"):
        sim.at(1.5, lambda: None)
    with pytest.raises(SimulationError, match="non-integral"):
        sim.after(2.25, lambda: None)
    # integral floats are fine and land on the integer clock
    fired = []
    sim.at(5.0, lambda: fired.append(sim.now))
    sim.after(7.0, lambda: fired.append(sim.now))
    sim.run_until(20)
    assert fired == [5, 7]


# ----------------------------------------------------------------------
# wheel cancellation edge cases
# ----------------------------------------------------------------------
def test_wheel_cancel_then_reschedule_same_cadence():
    sim = Simulator(kernel="wheel")
    fired = []
    first = sim.after(10 * MS, lambda: fired.append("old"), "old")
    first.cancel()
    sim.after(10 * MS, lambda: fired.append("new"), "new")
    sim.run_until(20 * MS)
    assert fired == ["new"]
    assert sim.events_fired == 1


def test_wheel_cancelled_slot_head_is_skipped():
    sim = Simulator(kernel="wheel")
    fired = []
    head = sim.at(int(2.1 * MS), lambda: fired.append("head"), "head")
    sim.at(int(2.7 * MS), lambda: fired.append("tail"), "tail")
    head.cancel()
    assert sim.peek_time() == int(2.7 * MS)
    sim.run_until(3 * MS)
    assert fired == ["tail"]


def test_wheel_cancelled_entries_never_reach_the_heap():
    sim = Simulator(kernel="wheel")
    event = sim.after(5 * MS, lambda: None, "doomed")
    event.cancel()
    sim.run_until(10 * MS)
    # dropped at slot flush, not lazily popped from the heap
    assert sim._heap == []
    assert sim.events_fired == 0


def test_peek_time_sees_the_wheel_not_just_the_heap():
    sim = Simulator(kernel="wheel")
    sim.at(200 * MS, lambda: None, "far")  # beyond horizon -> heap
    sim.at(3 * MS, lambda: None, "near")  # wheel slot
    assert sim.peek_time() == 3 * MS
    sim.run_until(5 * MS)
    assert sim.peek_time() == 200 * MS


def test_peek_time_skips_cancelled_wheel_entries():
    sim = Simulator(kernel="wheel")
    near = sim.at(3 * MS, lambda: None, "near")
    sim.at(40 * MS, lambda: None, "later")
    near.cancel()
    assert sim.peek_time() == 40 * MS
    assert sim.pending == 1


def test_wheel_cancel_during_run_between_slots():
    """An event cancelled by an earlier event in a prior slot never fires."""
    sim = Simulator(kernel="wheel")
    fired = []
    victim = sim.at(7 * MS, lambda: fired.append("victim"), "victim")
    sim.at(2 * MS, lambda: victim.cancel(), "killer")
    sim.run_until(20 * MS)
    assert fired == []
    assert sim.events_fired == 1


# ----------------------------------------------------------------------
# golden end-to-end byte-identity across kernels
# ----------------------------------------------------------------------
def _fig6_cell_bytes(tmp_path, monkeypatch, kernel: str) -> bytes:
    from repro.baselines import XenCredit
    from repro.experiments.runner import run_scenario
    from repro.experiments.scenarios import SCENARIOS
    from repro.metrics.export import scenario_rows, write_csv

    monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
    run = run_scenario(
        SCENARIOS["S1"],
        XenCredit(),
        warmup_ns=200 * MS,
        measure_ns=400 * MS,
        seed=0,
    )
    path = tmp_path / f"fig6_{kernel}.csv"
    write_csv(path, scenario_rows(run))
    return path.read_bytes()


@pytest.mark.slow
def test_golden_fig6_cell_identical_across_kernels(tmp_path, monkeypatch):
    heap = _fig6_cell_bytes(tmp_path, monkeypatch, "heap")
    wheel = _fig6_cell_bytes(tmp_path, monkeypatch, "wheel")
    assert heap == wheel


def _churn_story_bytes(monkeypatch, kernel: str) -> bytes:
    from repro.dynamics import ChurnTimeline, VmBoot, VmShutdown
    from repro.experiments.churn import BASE, ChurnStory, run_churn_cell

    monkeypatch.setenv("REPRO_SIM_KERNEL", kernel)
    story = ChurnStory(
        "tiny",
        BASE,
        ChurnTimeline(
            (
                VmBoot(100 * MS, name="dyn0", mode="io"),
                VmShutdown(200 * MS, name="mem0"),
            )
        ),
    )
    run = run_churn_cell(
        story, "aql", warmup_ns=150 * MS, measure_ns=300 * MS, seed=0
    )
    payload = dataclasses.asdict(run)
    return json.dumps(payload, sort_keys=True, default=repr).encode()


@pytest.mark.slow
def test_golden_churn_story_identical_across_kernels(monkeypatch):
    heap = _churn_story_bytes(monkeypatch, "heap")
    wheel = _churn_story_bytes(monkeypatch, "wheel")
    assert heap == wheel
