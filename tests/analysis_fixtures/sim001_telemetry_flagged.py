# simlint: module=repro.telemetry.registry
# simlint-expect: SIM001:11 SIM001:15
"""SIM001 positive fixture: telemetry *recording* is simulation code.

Only repro.telemetry.exposition is allowlisted; a wall-clock read while
emitting registry samples or spans still fails the lint."""
import time


def sample_with_wall_clock(registry) -> None:
    registry.sample(time.time_ns())


def span_with_wall_clock(tracer) -> None:
    tracer.begin(time.time_ns(), "slice")
