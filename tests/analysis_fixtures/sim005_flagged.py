# simlint: module=repro.guest.phases
# simlint-expect: SIM005:7 SIM005:13
"""SIM005 positive fixture: dict-backed classes in a hot-path module."""
from dataclasses import dataclass


class Token:
    def __init__(self, owner: str):
        self.owner = owner


@dataclass
class Sample:
    value: int
    weight: float


class Justified:  # one-off sentinel  # simlint: disable=SIM005
    def __init__(self) -> None:
        self.marker = object()
