# simlint: module=repro.experiments.fake_fixture
# simlint-expect: SIM007:5 SIM007:6 SIM007:7 SIM007:8 SIM007:13 SIM007:18 SIM007:25
"""SIM007 positive fixture: ad-hoc process pools dodging the engine."""

import multiprocessing
import multiprocessing.pool as mp_pool
from multiprocessing import Pool
from concurrent.futures import ProcessPoolExecutor
import concurrent.futures


def fan_out_with_pool(cells):
    with Pool(4) as pool:  # the Pool() call is flagged on its own
        return pool.map(len, cells)


def fan_out_with_executor(cells):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(len, cells))


def fan_out_with_module_attribute(cells):
    # no pool-name import to catch here: the *call* resolves through
    # the plain `import concurrent.futures` and is flagged directly
    with concurrent.futures.ProcessPoolExecutor() as pool:
        return list(pool.map(len, cells))
