# simlint: module=repro.experiments.fake_fixture
# simlint-expect:
"""SIM007 negative fixture: the sanctioned ways to go wide.

Fan-out happens by planning cells through the sweep engine; thread
pools (same interpreter, cannot bypass the cache) stay legal.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.exec import Cell, SweepRunner


def fan_out_through_the_engine(fn, seeds):
    cells = [Cell(fn, dict(seed=seed)) for seed in seeds]
    return SweepRunner(jobs=4).run(cells)


def overlap_io(fetch, urls):
    with ThreadPoolExecutor(max_workers=4) as pool:
        return list(pool.map(fetch, urls))
