# simlint: module=repro.sim.fake_fixture
# simlint-expect:
"""SIM004 negative fixture: integral clock arithmetic and unitless math."""


def slot_index(start_ns: int, slot_ns: int) -> int:
    return start_ns // slot_ns


def rounded(delay_ns: int, factor: int) -> int:
    return round(delay_ns / factor)


def unitless(numerator: float, denominator: float) -> int:
    return int(numerator / denominator)


def integral_compare(time_ns: int) -> bool:
    return time_ns == 5


def ratio_compare(share: float) -> bool:
    return share == 0.5
