# simlint: module=repro.perf.fake_fixture
# simlint-expect:
"""SIM001 negative fixture: repro.perf is allowlisted (profiling is its job)."""
import time


def wall_probe() -> float:
    return time.perf_counter()


def wall_now() -> float:
    return time.time()
