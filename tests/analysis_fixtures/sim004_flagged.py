# simlint: module=repro.sim.fake_fixture
# simlint-expect: SIM004:8 SIM004:12 SIM004:16
"""SIM004 positive fixture: float hazards on simulated time."""
import math


def slot_index(start_ns: int, slot_ns: int) -> int:
    return int(start_ns / slot_ns)


def floor_index(elapsed_time: int, period: int) -> int:
    return math.floor(elapsed_time / period)


def at_half(now: float) -> bool:
    return now == 0.5


def justified(total_ns: int, factor: float) -> int:
    # spike scaling rounds down by design
    return int(total_ns / factor)  # simlint: disable=SIM004
