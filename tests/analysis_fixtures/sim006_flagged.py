# simlint: module=repro.hypervisor.fake_fixture
# simlint-expect: SIM006:11 SIM006:18 SIM006:25 SIM006:32
"""SIM006 positive fixture: broad handlers swallowing SimulationError."""
from repro.sim.engine import SimulationError


def swallow_everything(step) -> bool:
    try:
        step()
        return True
    except Exception:
        return False


def swallow_bare(step):
    try:
        step()
    except:
        pass


def swallow_tuple(step):
    try:
        step()
    except (ValueError, RuntimeError):
        pass


def swallow_directly(step):
    try:
        step()
    except SimulationError:
        pass


def justified(step) -> bool:
    try:
        step()
        return True
    except Exception:  # probing fixture, cannot raise  # simlint: disable=SIM006
        return False
