# simlint: module=repro.dynamics.fake_fixture
# simlint-expect:
"""SIM002 negative fixture: seeded generators are the sanctioned API."""
import random

import numpy as np

from repro.sim.rng import RngFactory


def seeded_draw(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.random())


def stream_draw(seed: int) -> float:
    rng = RngFactory(seed).stream("fixture/io")
    return float(rng.exponential(2.0))


def seeded_instance(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()
