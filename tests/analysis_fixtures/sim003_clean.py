# simlint: module=repro.core.fake_fixture
# simlint-expect:
"""SIM003 negative fixture: explicit ordering and order-insensitive uses."""


def pick_first(candidates: set):
    for candidate in sorted(set(candidates)):
        return candidate


def total(weights: dict) -> float:
    return sum(weights.values())


def membership(candidates: set, name: str) -> bool:
    return name in candidates


def reduction(candidates: set) -> int:
    return max(set(candidates), default=0)


def insertion_order(weights: dict):
    for name in weights:
        yield name
