# simlint: module=repro.hypervisor.fake_fixture
# simlint-expect:
"""SIM006 negative fixture: narrow handlers and cleanup-and-propagate."""


def narrow(parse):
    try:
        return parse()
    except ValueError:
        return None


def cleanup_and_propagate(step, unwind):
    try:
        step()
    except BaseException:
        unwind()
        raise


def rewrap(step):
    try:
        step()
    except Exception as exc:
        raise RuntimeError("fixture failed") from exc
