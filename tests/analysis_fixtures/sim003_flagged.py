# simlint: module=repro.core.fake_fixture
# simlint-expect: SIM003:7 SIM003:12 SIM003:17 SIM003:23
"""SIM003 positive fixture: order-nondeterministic decision iteration."""


def pick_first(candidates: set):
    for candidate in set(candidates):
        return candidate


def collect(candidates: list) -> list:
    return [c for c in {name for name in candidates}]


def laundered(candidates: set) -> list:
    out = []
    for candidate in list(frozenset(candidates)):
        out.append(candidate)
    return out


def key_walk(weights: dict):
    for name in weights.keys():
        yield name


def justified(candidates: set):
    for candidate in set(candidates):  # simlint: disable=SIM003
        return candidate
