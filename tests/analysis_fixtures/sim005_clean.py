# simlint: module=repro.hardware.pmu
# simlint-expect:
"""SIM005 negative fixture: slotted, exempt, and out-of-scope classes."""
import enum
from dataclasses import dataclass


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


@dataclass(slots=True)
class Snapshot:
    value: int


class FixtureError(RuntimeError):
    pass


class Kind(enum.Enum):
    A = 1
    B = 2
