# simlint: module=repro.hypervisor.fake_fixture
# simlint-expect: SIM001:10 SIM001:11 SIM001:15 SIM001:19
"""SIM001 positive fixture: wall-clock reads in simulation code."""
import time
from datetime import datetime
from time import perf_counter as pc


def sample_latency() -> float:
    started = time.time()
    return time.monotonic() - started


def stamp() -> object:
    return datetime.now()


def quick() -> float:
    return pc()


def justified() -> float:
    # wall probe kept for a doc example
    return time.perf_counter()  # simlint: disable=SIM001
