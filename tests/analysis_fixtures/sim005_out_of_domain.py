# simlint: module=repro.experiments.fake_fixture
# simlint-expect:
"""SIM005 scoping fixture: slots are only required in hot-path modules.

Experiment drivers construct a handful of objects per run; per-instance
dict overhead is immaterial there, so SIM005 stays silent.
"""


class SweepConfig:
    def __init__(self, seed: int):
        self.seed = seed
