# simlint: module=repro.exec.queue
# simlint-expect:
"""SIM007 scoping fixture: the engine's own pool is the exemption.

``repro.exec.queue`` *is* the sanctioned process-pool entry point —
the checkpointing and teardown SIM007 protects live here, so the
imports the rule bans everywhere else are this module's job.
"""

import multiprocessing


def build_context():
    return multiprocessing.get_context("fork")
