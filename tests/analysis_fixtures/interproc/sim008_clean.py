# simlint: module=repro.sim.fake_interproc_clean
# simlint-expect:
"""SIM008 negative fixture: seeded chains and a source-suppressed probe.

Taint suppressed at its *source* line contributes nothing anywhere —
``probe_caller`` stays clean because ``_justified_probe`` waived the
read where it happens.  The Hypothesis property in
``tests/test_analysis_interproc.py`` generalises this single case.
"""
import time


def _derive(seed: int) -> int:
    return (seed * 2654435761) % (2**32)


def sample(seed: int) -> int:
    return _derive(seed)


def _justified_probe() -> float:
    return time.time()  # simlint: disable=SIM001,SIM008 -- fixture: waived source


def probe_caller() -> float:
    return _justified_probe()
