# simlint: module=repro.perf.fake_helpers
# simlint-expect:
"""SIM008 helper fixture: an allowlisted module that reads the clock.

``repro.perf`` profiles on purpose, so SIM001 exempts it and SIM008
treats it as a legitimate *sink* — no finding lands in this file.  But
the allowlist is lifted to the sink only: ``now_ms`` still seeds taint,
and the laundering it enables is caught in ``sim008_flagged.py`` at the
sim-domain caller.
"""
import time


def now_ms() -> float:
    return time.perf_counter() * 1e3


def pure_scale(value: float) -> float:
    return value * 2.0
