# simlint: module=repro.experiments.fake_family
# simlint-expect: SIM009:18 SIM009:24 SIM009:33 SIM009:42 SIM009:43
"""SIM009 positive fixture: impure cells of every stripe.

A tainted cell (reaches ``os.getpid``), a cell mutating a module
global, a kwarg capturing a live ``Machine``, a lambda cell, and an
``@engine_cell``-marked tainted function discovered without any
``Cell(...)`` literal naming it.
"""
import os

from repro.exec import Cell, engine_cell
from repro.hypervisor.machine import Machine

_CALLS = 0


def _tainted_cell(seed: int) -> int:
    return seed ^ os.getpid()


def _counting_cell(value: int) -> int:
    global _CALLS
    _CALLS += 1
    return value


def _honest_cell(value: int) -> int:
    return value * 3


@engine_cell
def _marked_cell(seed: int) -> int:
    return seed ^ os.getpid()


def build_cells() -> list:
    machine = Machine(telemetry=None)
    return [
        Cell(_tainted_cell, kwargs={"seed": 7}),
        Cell(_counting_cell, kwargs={"value": 1}),
        Cell(_honest_cell, kwargs={"value": machine}),
        Cell(lambda value: value, kwargs={"value": 2}),
    ]
