# simlint: module=repro.experiments.fake_out_of_domain
# simlint-expect:
"""SIM008 out-of-domain fixture: orchestration may consult the clock.

``repro.experiments`` is not a sim domain, so it is not a SIM008 sink:
calling a tainted helper from the orchestration layer is legitimate
(budgets, progress reporting) and produces no finding.
"""
from repro.perf.fake_helpers import now_ms


def wall_time_budget() -> float:
    return now_ms()
