# simlint: module=repro.ops.fake_flight
# simlint-expect: SIM001:16 SIM008:20
"""SIM008 ops-sink fixture: an unwaived clock read in ``repro.ops``.

The observation plane reports host-side facts, but every wall-clock
read there must carry a justified waiver naming its pinning test; this
fake module omits one.  SIM001 flags the read itself and — because
``repro.ops`` joined ``SINK_DOMAINS`` — the whole-program taint pass
flags the caller that launders it, proving the determinism gate holds
above the exec layer too.
"""
import time


def unwaived_stamp() -> float:
    return time.time()


def dump_header() -> float:
    return unwaived_stamp()
