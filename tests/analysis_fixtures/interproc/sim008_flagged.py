# simlint: module=repro.sim.fake_interproc
# simlint-expect: SIM008:18 SIM008:22
"""SIM008 positive fixture: laundered and direct nondeterminism.

``elapsed`` launders a wall-clock read through an allowlisted helper
in another file — invisible to per-module SIM001 (the source module is
exempt and this module never touches ``time``), caught by the
interprocedural taint pass at the call site.  ``pick_kernel`` hits a
direct ordering source no per-module rule covers; ``tolerated`` shows
a call-site waiver silencing exactly one finding.
"""
import os

from repro.perf.fake_helpers import now_ms, pure_scale


def elapsed() -> float:
    return now_ms()


def pick_kernel() -> str:
    return os.environ.get("FAKE_KERNEL", "wheel")


def tolerated() -> float:
    return now_ms()  # simlint: disable=SIM008 -- fixture: waived call site


def scaled() -> float:
    return pure_scale(3.0)
