# simlint: module=repro.experiments.fake_family_clean
# simlint-expect:
"""SIM009 negative fixture: pure, picklable, spec-driven cells.

``measure`` is a module-level pure function of its kwargs; the sweep
builds cells from plain data only.  The ``@engine_cell`` marker adds
it to discovery and the proof finds nothing.
"""
from repro.exec import Cell, engine_cell


@engine_cell
def measure(seed: int, steps: int) -> int:
    total = 0
    for step in range(steps):
        total += (seed * step) % 97
    return total


def build_cells() -> list:
    return [
        Cell(measure, kwargs={"seed": seed, "steps": 32}) for seed in range(4)
    ]
