# simlint: module=repro.experiments.fake_grid
# simlint-expect:
"""SIM009 out-of-domain fixture: a foreign ``Cell`` is not the engine's.

Cell discovery keys on the *resolved* constructor name — a grid tile
type that happens to be called ``Cell`` is ignored, lambdas and all.
"""
from fakegrid.tiles import Cell


def build_tiles() -> list:
    return [Cell(lambda value: value, kwargs={"value": 1})]
