# simlint: module=repro.metrics.fake_fixture
# simlint-expect:
"""SIM003 scoping fixture: reporting code may iterate sets freely.

``repro.metrics`` is not a decision domain — set order there can only
reorder output rows, never change a scheduling result (and report
functions sort before printing anyway).
"""


def histogram(values: set) -> dict:
    counts = {}
    for value in set(values):
        counts[value] = counts.get(value, 0) + 1
    return counts
