# simlint: module=repro.telemetry.exposition
# simlint-expect:
"""SIM001 negative fixture: exposition may stamp export artifacts.

The wall-clock moment an artifact was *written* is host provenance,
recorded after the simulation finished — never a simulation input."""
import time


def export_stamp() -> float:
    return time.time()
