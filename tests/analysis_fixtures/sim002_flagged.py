# simlint: module=repro.dynamics.fake_fixture
# simlint-expect: SIM002:10 SIM002:14 SIM002:18 SIM002:22 SIM002:26 SIM002:30
"""SIM002 positive fixture: global-state and unseeded randomness."""
import random

import numpy as np


def jitter() -> float:
    return random.random()


def pick(items):
    return random.choice(items)


def legacy_draw() -> float:
    return np.random.rand()


def entropy_seeded():
    return np.random.default_rng()


def entropy_seeded_instance():
    return random.Random()


def os_entropy():
    return random.SystemRandom()


def justified() -> float:
    return random.random()  # doc example only  # simlint: disable=SIM002
