"""Placement policies: bin-packing baselines and the AQL-aware placer.

The Hypothesis block pins the migration safety property the fleet
engine's bookkeeping depends on: across arbitrary fleet states, a
rebalance pass never drops, duplicates, or over-packs a VM, and
respects its budget.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    AqlAware,
    BestFit,
    FirstFit,
    HostState,
    PlacementError,
    VMSpec,
    make_placer,
)

TYPE_LABELS = ("ConSpin", "IOInt", "LLCF", "LLCO", "LoLCF")


def _hosts(*specs):
    """(slots, vms) pairs -> HostState tuple in id order."""
    return tuple(
        HostState(host_id=f"h{i:02d}", slots=slots, vms=tuple(vms))
        for i, (slots, vms) in enumerate(specs)
    )


class TestHostState:
    def test_free_slots(self):
        host = HostState("h00", slots=4, vms=("a", "b"))
        assert host.free == 2

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            HostState("h00", slots=1, vms=("a", "b"))


class TestFirstFit:
    def test_fills_hosts_in_id_order(self):
        hosts = _hosts((2, ()), (2, ()))
        arrivals = [VMSpec(f"vm{i}", "llcf") for i in range(3)]
        assignment = FirstFit().place(arrivals, hosts, {})
        assert assignment == {"vm0": "h00", "vm1": "h00", "vm2": "h01"}

    def test_skips_full_hosts(self):
        hosts = _hosts((1, ("old",)), (2, ()))
        assignment = FirstFit().place([VMSpec("vm0", "io")], hosts, {})
        assert assignment == {"vm0": "h01"}

    def test_full_fleet_raises(self):
        hosts = _hosts((1, ("old",)))
        with pytest.raises(PlacementError):
            FirstFit().place([VMSpec("vm0", "io")], hosts, {})


class TestBestFit:
    def test_prefers_tightest_host(self):
        # h01 has 1 free slot, h00 has 3: best-fit packs the tight one
        hosts = _hosts((4, ("a",)), (4, ("b", "c", "d")))
        assignment = BestFit().place([VMSpec("vm0", "llcf")], hosts, {})
        assert assignment == {"vm0": "h01"}

    def test_tie_breaks_to_host_order(self):
        hosts = _hosts((2, ("a",)), (2, ("b",)))
        assignment = BestFit().place([VMSpec("vm0", "llcf")], hosts, {})
        assert assignment == {"vm0": "h00"}


class TestAqlAwarePlace:
    def test_joins_type_mates(self):
        # an io arrival should join the host full of IOInt VMs, not
        # the emptier one full of streamers
        hosts = _hosts((4, ("io0", "io1")), (4, ("st0",)))
        types = {"io0": "IOInt", "io1": "IOInt", "st0": "LLCO"}
        assignment = AqlAware().place([VMSpec("web", "io")], hosts, types)
        assert assignment == {"web": "h00"}

    def test_seeds_fresh_home_when_no_mates(self):
        # no host knows this type: take the emptiest host
        hosts = _hosts((4, ("a", "b", "c")), (4, ("d",)))
        types = {name: "LLCF" for name in "abcd"}
        assignment = AqlAware().place([VMSpec("web", "io")], hosts, types)
        assert assignment == {"web": "h01"}

    def test_respects_capacity(self):
        hosts = _hosts((1, ("io0",)), (4, ()))
        types = {"io0": "IOInt"}
        assignment = AqlAware().place([VMSpec("web", "io")], hosts, types)
        assert assignment == {"web": "h01"}  # mates host is full


class TestAqlAwareRebalance:
    def test_moves_minority_to_plurality_host(self):
        hosts = _hosts((4, ("ll0", "ll1", "io0")), (4, ("io1", "io2")))
        types = {
            "ll0": "LLCF", "ll1": "LLCF",
            "io0": "IOInt", "io1": "IOInt", "io2": "IOInt",
        }
        moves = AqlAware().rebalance(hosts, types, budget=4)
        assert [(m.vm, m.src, m.dst) for m in moves] == [
            ("io0", "h00", "h01")
        ]

    def test_budget_zero_means_no_moves(self):
        hosts = _hosts((4, ("ll0", "io0")), (4, ("io1",)))
        types = {"ll0": "LLCF", "io0": "IOInt", "io1": "IOInt"}
        assert AqlAware().rebalance(hosts, types, budget=0) == []

    def test_empty_host_is_fallback_home(self):
        # no host has LLCO plurality, but an empty host exists
        hosts = _hosts((4, ("io0", "io1", "st0")), (4, ()))
        types = {"io0": "IOInt", "io1": "IOInt", "st0": "LLCO"}
        moves = AqlAware().rebalance(hosts, types, budget=4)
        assert [(m.vm, m.src, m.dst) for m in moves] == [
            ("st0", "h00", "h01")
        ]

    def test_pure_hosts_stay_put(self):
        hosts = _hosts((4, ("a", "b")), (4, ("c", "d")))
        types = {"a": "LLCF", "b": "LLCF", "c": "IOInt", "d": "IOInt"}
        assert AqlAware().rebalance(hosts, types, budget=8) == []


class TestMakePlacer:
    def test_known_names(self):
        for name in ("first_fit", "best_fit", "aql_aware"):
            assert make_placer(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown placer"):
            make_placer("round_robin")


@st.composite
def fleet_states(draw):
    """An arbitrary fleet: hosts with typed residents plus a budget."""
    n_hosts = draw(st.integers(min_value=2, max_value=6))
    slots = draw(st.integers(min_value=1, max_value=5))
    hosts = []
    types = {}
    counter = 0
    for i in range(n_hosts):
        population = draw(st.integers(min_value=0, max_value=slots))
        vms = []
        for _ in range(population):
            name = f"vm{counter:03d}"
            counter += 1
            vms.append(name)
            types[name] = draw(st.sampled_from(TYPE_LABELS))
        hosts.append(HostState(f"h{i:02d}", slots=slots, vms=tuple(vms)))
    budget = draw(st.integers(min_value=0, max_value=8))
    return tuple(hosts), types, budget


class TestMigrationSafety:
    """Migration never drops, duplicates, or over-packs a VM."""

    @settings(max_examples=120, deadline=None)
    @given(fleet_states())
    def test_rebalance_preserves_population(self, state):
        hosts, types, budget = state
        moves = AqlAware().rebalance(hosts, types, budget)

        assert len(moves) <= budget
        occupancy = {host.host_id: list(host.vms) for host in hosts}
        slots = {host.host_id: host.slots for host in hosts}
        before = Counter()
        for host in hosts:
            before.update(host.vms)
        assert all(count == 1 for count in before.values())

        moved = set()
        for move in moves:
            assert move.src != move.dst
            assert move.vm not in moved, "a VM migrated twice in one pass"
            moved.add(move.vm)
            assert move.vm in occupancy[move.src], "moved a VM it lost"
            occupancy[move.src].remove(move.vm)
            occupancy[move.dst].append(move.vm)

        after = Counter()
        for host_id in sorted(occupancy):
            assert len(occupancy[host_id]) <= slots[host_id], (
                f"{host_id} over-packed"
            )
            after.update(occupancy[host_id])
        assert after == before, "migration dropped or duplicated a VM"

    @settings(max_examples=60, deadline=None)
    @given(fleet_states())
    def test_rebalance_is_deterministic(self, state):
        hosts, types, budget = state
        first = AqlAware().rebalance(hosts, types, budget)
        second = AqlAware().rebalance(hosts, dict(types), budget)
        assert first == second
