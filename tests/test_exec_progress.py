"""EtaTracker contract: no div-by-zero, no negative ETA, ever.

The old inline ETA math in the progress printer divided by the number
of finished cells — zero until the first completion — and could go
negative when a resumed run's replay storm outpaced the wall clock.
:class:`repro.exec.progress.EtaTracker` owns that arithmetic now, with
the clamps these tests pin.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exec.progress import EtaTracker


class TestEtaTracker:
    def test_no_samples_means_no_estimate(self):
        tracker = EtaTracker()
        assert tracker.rate() is None
        assert tracker.estimate(10) is None  # never a ZeroDivisionError

    def test_cached_outcomes_do_not_feed_the_rate(self):
        """A resume replaying 1000 cells in ~0s must not project a
        near-zero ETA for the cells that still have to execute."""
        tracker = EtaTracker()
        for _ in range(1000):
            tracker.note("resumed", 0.0)
            tracker.note("hit", 0.0)
        assert tracker.rate() is None
        assert tracker.estimate(5) is None

    def test_rate_is_mean_of_ran_seconds(self):
        tracker = EtaTracker()
        tracker.note("ran", 2.0)
        tracker.note("ran", 4.0)
        assert tracker.rate() == pytest.approx(3.0)
        assert tracker.estimate(10) == pytest.approx(30.0)

    def test_zero_remaining_is_zero_eta(self):
        tracker = EtaTracker()
        assert tracker.estimate(0) == 0.0  # even with no samples
        tracker.note("ran", 5.0)
        assert tracker.estimate(0) == 0.0

    def test_negative_remaining_clamps_to_zero(self):
        """A stale cells-hint smaller than the done count must not
        produce a negative ETA."""
        tracker = EtaTracker()
        tracker.note("ran", 5.0)
        assert tracker.estimate(-3) == 0.0

    def test_negative_seconds_clamp_at_note_time(self):
        """A clock-step backwards (NTP) cannot poison the mean."""
        tracker = EtaTracker()
        tracker.note("ran", -1.0)
        tracker.note("ran", 3.0)
        rate = tracker.rate()
        assert rate is not None and rate >= 0.0
        estimate = tracker.estimate(4)
        assert estimate is not None and estimate >= 0.0

    @given(
        samples=st.lists(
            st.tuples(
                st.sampled_from(["ran", "hit", "resumed"]),
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=50,
        ),
        remaining=st.integers(min_value=-5, max_value=100),
    )
    def test_estimate_is_never_negative(self, samples, remaining):
        tracker = EtaTracker()
        for outcome, seconds in samples:
            tracker.note(outcome, seconds)
        estimate = tracker.estimate(remaining)
        assert estimate is None or estimate >= 0.0
