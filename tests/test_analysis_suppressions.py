"""Suppression parser contract: format ∘ parse round-trips, and a
suppressed line really is silenced end-to-end through the engine."""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    Analyzer,
    format_suppression,
    parse_suppressions,
)
from repro.analysis.core import is_suppressed, Violation

rule_ids = st.one_of(
    st.from_regex(r"SIM[0-9]{3}", fullmatch=True),
    st.from_regex(r"[A-Z]{2,8}[0-9]{1,4}", fullmatch=True),
)


@given(st.lists(rule_ids, min_size=1, max_size=8, unique=True))
def test_round_trip_arbitrary_rule_lists(ids: list[str]):
    comment = format_suppression(ids)
    parsed = parse_suppressions(f"x = compute()  {comment}\n")
    assert parsed == {1: frozenset(rid.upper() for rid in ids)}


@given(st.lists(rule_ids, min_size=1, max_size=4, unique=True), st.integers(0, 30))
def test_round_trip_survives_line_position(ids: list[str], offset: int):
    comment = format_suppression(ids)
    source = "\n" * offset + f"y = 1  {comment}\n"
    parsed = parse_suppressions(source)
    assert parsed == {offset + 1: frozenset(rid.upper() for rid in ids)}


@given(st.lists(rule_ids, min_size=1, max_size=8, unique=True))
def test_parse_is_case_insensitive(ids: list[str]):
    lowered = format_suppression([rid.lower() for rid in ids])
    uppered = format_suppression([rid.upper() for rid in ids])
    assert parse_suppressions(lowered) == parse_suppressions(uppered)


def test_all_token_suppresses_everything():
    parsed = parse_suppressions("x = 1  # simlint: disable=all\n")
    violation = Violation("SIM001", "<s>", 1, 0, "m")
    assert is_suppressed(violation, parsed)


def test_multiple_comments_union_on_one_line():
    line = "x = 1  # simlint: disable=SIM001 # simlint: disable=SIM002\n"
    assert parse_suppressions(line) == {1: frozenset({"SIM001", "SIM002"})}


def test_unrelated_comments_parse_to_nothing():
    assert parse_suppressions("x = 1  # a simlint-adjacent remark\n") == {}


def test_format_rejects_empty_list():
    with pytest.raises(ValueError):
        format_suppression([])


def test_suppression_silences_engine_end_to_end():
    source = (
        "import time\n"
        "a = time.time()\n"
        "b = time.time()  # simlint: disable=SIM001\n"
    )
    violations = Analyzer().analyze_source(
        source, Path("<unit>"), module="repro.sim.fake"
    )
    assert [(v.rule_id, v.line) for v in violations] == [("SIM001", 2)]


def test_wrong_rule_id_does_not_suppress():
    source = "import time\na = time.time()  # simlint: disable=SIM002\n"
    violations = Analyzer().analyze_source(
        source, Path("<unit>"), module="repro.sim.fake"
    )
    assert [(v.rule_id, v.line) for v in violations] == [("SIM001", 2)]
