"""Tests for the guest OS thread scheduler (via a real Machine)."""

import pytest

from repro.guest.phases import Compute, Sleep
from repro.guest.thread import GuestThread, ThreadState
from repro.hypervisor.machine import Machine
from repro.sim.units import MS


@pytest.fixture
def machine():
    return Machine(seed=0)


def spin_forever_body(thread):
    while True:
        yield Compute(1_000_000)


class TestThreadPlacement:
    def test_explicit_pinning(self, machine):
        vm = machine.new_vm("vm", vcpus=2)
        t = GuestThread("t", spin_forever_body)
        vm.guest.add_thread(t, vm.vcpus[1])
        assert t.vcpu is vm.vcpus[1]

    def test_default_placement_balances(self, machine):
        vm = machine.new_vm("vm", vcpus=2)
        threads = [
            vm.guest.add_thread(GuestThread(f"t{i}", spin_forever_body))
            for i in range(4)
        ]
        per_vcpu = {}
        for t in threads:
            per_vcpu[t.vcpu.vcpu_id] = per_vcpu.get(t.vcpu.vcpu_id, 0) + 1
        assert set(per_vcpu.values()) == {2}

    def test_foreign_vcpu_rejected(self, machine):
        vm1 = machine.new_vm("vm1", 1)
        vm2 = machine.new_vm("vm2", 1)
        with pytest.raises(ValueError):
            vm1.guest.add_thread(GuestThread("t", spin_forever_body), vm2.vcpus[0])


class TestPickAndRotate:
    def test_pick_none_when_empty(self, machine):
        vm = machine.new_vm("vm", 1)
        assert vm.guest.pick(vm.vcpus[0]) is None

    def test_pick_returns_ready_thread(self, machine):
        vm = machine.new_vm("vm", 1)
        t = vm.guest.add_thread(GuestThread("t", spin_forever_body))
        assert vm.guest.pick(vm.vcpus[0]) is t

    def test_rotation_after_guest_slice(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        b = vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        assert vm.guest.pick(vcpu) is a
        vm.guest.note_run(vcpu, vm.guest.guest_slice_ns + 1)
        assert vm.guest.maybe_rotate(vcpu) is b

    def test_no_rotation_below_slice(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        vm.guest.note_run(vcpu, 100)
        assert vm.guest.maybe_rotate(vcpu) is a

    def test_spinning_thread_never_rotated(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        a.state = ThreadState.SPINNING
        vm.guest.note_run(vcpu, vm.guest.guest_slice_ns * 10)
        assert vm.guest.maybe_rotate(vcpu) is a


class TestBlockingAndWaking:
    def test_blocked_thread_not_picked(self, machine):
        vm = machine.new_vm("vm", 1)
        t = vm.guest.add_thread(GuestThread("t", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        vm.guest.thread_blocked(t)
        assert vm.guest.pick(vcpu) is None
        assert not vm.guest.has_runnable(vcpu)

    def test_thread_ready_requeues(self, machine):
        vm = machine.new_vm("vm", 1)
        t = vm.guest.add_thread(GuestThread("t", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        vm.guest.thread_blocked(t)
        assert vm.guest.thread_ready(t) is True
        assert vm.guest.pick(vcpu) is t

    def test_thread_ready_on_nonblocked_is_noop(self, machine):
        vm = machine.new_vm("vm", 1)
        t = vm.guest.add_thread(GuestThread("t", spin_forever_body))
        assert vm.guest.thread_ready(t) is False

    def test_exited_thread_gone(self, machine):
        vm = machine.new_vm("vm", 1)
        t = vm.guest.add_thread(GuestThread("t", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        vm.guest.thread_exited(t)
        assert vm.guest.pick(vcpu) is None

    def test_runnable_count(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        assert vm.guest.runnable_count(vcpu) == 2
        vm.guest.pick(vcpu)
        vm.guest.thread_blocked(a)
        assert vm.guest.runnable_count(vcpu) == 1


class TestPreemptTo:
    def test_interrupt_switches_current(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        b = vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        assert vm.guest.pick(vcpu) is a
        assert vm.guest.preempt_to(vcpu, b) is True
        assert vm.guest.pick(vcpu) is b
        # a resumes right after b (front of queue)
        vm.guest.thread_blocked(b)
        assert vm.guest.pick(vcpu) is a

    def test_preempt_to_current_is_noop(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        assert vm.guest.preempt_to(vcpu, a) is False

    def test_spinner_not_displaced(self, machine):
        vm = machine.new_vm("vm", 1)
        a = vm.guest.add_thread(GuestThread("a", spin_forever_body))
        b = vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        a.state = ThreadState.SPINNING
        assert vm.guest.preempt_to(vcpu, b) is False

    def test_blocked_thread_cannot_preempt(self, machine):
        vm = machine.new_vm("vm", 1)
        vm.guest.add_thread(GuestThread("a", spin_forever_body))
        b = vm.guest.add_thread(GuestThread("b", spin_forever_body))
        vcpu = vm.vcpus[0]
        vm.guest.pick(vcpu)
        vm.guest.thread_blocked(b)
        assert vm.guest.preempt_to(vcpu, b) is False


class TestPhaseValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1)
