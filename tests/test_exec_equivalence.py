"""Equivalence properties of the parallel sweep engine.

DESIGN.md §7 claims seeded simulations are deterministic; this file
enforces the claim *across process boundaries*: a sweep run with 4
worker processes is identical to the serial run, a cache hit replays
byte-identical results, and a checkpointed run resumes to the same
bytes.  These guarantees are what make ``repro.exec`` safe to use for
every paper figure — and the four-family section at the bottom pins
them for a representative cell of *every* cell family in the tree
(figure sweeps, churn stories, fleet host-epochs, fuzz cases).
"""

import pickle

import pytest

from repro.baselines import AqlPolicy, XenCredit
from repro.dynamics.events import ChurnTimeline
from repro.exec import Cell, Engine, ResultCache, SweepRunner, resolve_jobs
from repro.exec.queue import fork_available
from repro.exec.runner import aggregate_telemetry
from repro.experiments.churn import make_stories, run_churn_cell
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import AppPlacement, Scenario
from repro.fleet.catalog import HOST_CATALOG, VMSpec
from repro.fleet.model import run_host_epoch
from repro.fuzz.corpus import run_fuzz_case
from repro.sim.units import MS

#: a grid of small scenarios — one IO+CPU mix, one spin+CPU mix —
#: covering multi-vCPU VMs, per-unit VMs and both policy kinds
GRID_SCENARIOS = (
    Scenario(
        "tiny-io",
        (AppPlacement("specweb2009", 2), AppPlacement("bzip2", 2)),
        pcpus=2,
    ),
    Scenario(
        "tiny-spin",
        (AppPlacement("facesim", 4), AppPlacement("hmmer", 2)),
        pcpus=2,
    ),
)

WARMUP_NS = 50 * MS
MEASURE_NS = 150 * MS


def grid_cells():
    return [
        Cell(
            run_scenario,
            dict(
                scenario=scenario, policy=policy, warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS, seed=5,
            ),
            label=f"{scenario.name}:{policy.name}",
        )
        for scenario in GRID_SCENARIOS
        for policy in (XenCredit(), AqlPolicy())
    ]


class TestParallelSerialEquivalence:
    def test_jobs4_identical_to_jobs1(self):
        serial = SweepRunner(jobs=1).run(grid_cells())
        parallel = SweepRunner(jobs=4).run(grid_cells())
        assert len(serial) == len(parallel) == 4
        for ours, theirs in zip(serial, parallel):
            assert ours.scenario == theirs.scenario
            assert ours.policy == theirs.policy
            # exact float equality: determinism, not tolerance
            assert ours.by_placement == theirs.by_placement
            assert ours.detected_types == theirs.detected_types
            assert ours.results == theirs.results
            assert ours.pool_layout == theirs.pool_layout

    def test_progress_reports_every_cell(self):
        reports = []
        SweepRunner(jobs=4, progress=reports.append).run(grid_cells())
        assert sorted(r.index for r in reports) == [0, 1, 2, 3]
        assert {r.outcome for r in reports} == {"ran"}
        assert all(r.total == 4 for r in reports)


class TestCacheReplay:
    def test_cache_hit_replays_byte_identical(self, tmp_path):
        cold_cache = ResultCache(root=tmp_path)
        cold_runner = SweepRunner(jobs=1, cache=cold_cache)
        cold = cold_runner.run(grid_cells())
        assert cold_cache.stats.misses == 4
        assert cold_cache.stats.hits == 0

        warm_cache = ResultCache(root=tmp_path)
        warm_runner = SweepRunner(jobs=1, cache=warm_cache)
        warm = warm_runner.run(grid_cells())
        assert warm_cache.stats.hits == 4
        assert warm_cache.stats.misses == 0

        for cell, original, replayed in zip(grid_cells(), cold, warm):
            key = cell.cache_key(cold_runner.salt)
            payload = warm_cache.get(key).payload
            # the stored payload is exactly the original run's pickle
            assert payload == pickle.dumps(
                original, protocol=pickle.HIGHEST_PROTOCOL
            )
            assert replayed.by_placement == original.by_placement
            assert replayed.detected_types == original.detected_types
            assert replayed.results == original.results

    def test_mixed_warm_cold_sweep(self, tmp_path):
        cells = grid_cells()
        warm_half = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        first_two = warm_half.run(cells[:2])

        cache = ResultCache(root=tmp_path)
        full = SweepRunner(jobs=4, cache=cache).run(cells)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        baseline = SweepRunner(jobs=1).run(cells)
        for ours, theirs in zip(full, baseline):
            assert ours.by_placement == theirs.by_placement
        for cached, live in zip(first_two, full[:2]):
            assert cached.by_placement == live.by_placement

    def test_hit_outcomes_reported(self, tmp_path):
        cells = grid_cells()[:2]
        SweepRunner(jobs=1, cache=ResultCache(root=tmp_path)).run(cells)
        reports = []
        SweepRunner(
            jobs=1, cache=ResultCache(root=tmp_path),
            progress=reports.append,
        ).run(cells)
        assert [r.outcome for r in reports] == ["hit", "hit"]
        assert all(r.key is not None for r in reports)


def telemetry_cells():
    """The grid again, with telemetry aggregation turned on."""
    return [
        Cell(
            run_scenario,
            dict(
                scenario=scenario, policy=policy, warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS, seed=5, telemetry=True,
            ),
            label=f"tel:{scenario.name}:{policy.name}",
        )
        for scenario in GRID_SCENARIOS
        for policy in (XenCredit(), AqlPolicy())
    ]


class TestTelemetryEquivalence:
    """Telemetry is recorded off the virtual clock only, so turning it
    on changes no result, and the summaries themselves are part of the
    serial ≡ parallel ≡ cached contract."""

    def test_telemetry_never_changes_results(self):
        plain = SweepRunner(jobs=1).run(grid_cells())
        instrumented = SweepRunner(jobs=1).run(telemetry_cells())
        for bare, telemetered in zip(plain, instrumented):
            assert bare.by_placement == telemetered.by_placement
            assert bare.results == telemetered.results
            assert bare.detected_types == telemetered.detected_types
            assert not bare.telemetry_summary
            assert telemetered.telemetry_summary

    def test_summaries_identical_serial_parallel_cached(self, tmp_path):
        serial = SweepRunner(jobs=1).run(telemetry_cells())
        parallel = SweepRunner(jobs=4).run(telemetry_cells())
        SweepRunner(jobs=1, cache=ResultCache(root=tmp_path)).run(
            telemetry_cells()
        )
        cache = ResultCache(root=tmp_path)
        cached = SweepRunner(jobs=1, cache=cache).run(telemetry_cells())
        assert cache.stats.hits == 4
        for ours, theirs, replayed in zip(serial, parallel, cached):
            # exact float equality: determinism, not tolerance
            assert ours.telemetry_summary == theirs.telemetry_summary
            assert ours.telemetry_summary == replayed.telemetry_summary
        # ... and so is the sweep-level aggregate
        assert aggregate_telemetry(serial) == aggregate_telemetry(parallel)
        assert aggregate_telemetry(serial) == aggregate_telemetry(cached)

    def test_aggregate_telemetry_sums_and_counts(self):
        runs = SweepRunner(jobs=1).run(telemetry_cells())
        aggregate = aggregate_telemetry(runs)
        assert aggregate["telemetry_runs"] == 4.0
        assert list(k for k in aggregate if k != "telemetry_runs") == sorted(
            k for k in aggregate if k != "telemetry_runs"
        )
        total_flips = sum(
            run.telemetry_summary.get("audit_type_flips", 0.0) for run in runs
        )
        assert aggregate["audit_type_flips"] == total_flips
        # uninstrumented results contribute nothing
        assert aggregate_telemetry(SweepRunner(jobs=1).run(grid_cells())) == {}


class TestScenarioRunPickling:
    def test_keep_built_run_round_trips(self):
        run = run_scenario(
            GRID_SCENARIOS[0], XenCredit(),
            warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS, seed=5,
            keep_built=True,
        )
        assert run.built is not None  # the live machine is available...
        thawed = pickle.loads(pickle.dumps(run))
        assert thawed.built is None  # ...but never crosses serialization
        assert thawed.by_placement == run.by_placement
        assert thawed.results == run.results
        assert thawed.detected_types == run.detected_types
        assert thawed.pool_layout == run.pool_layout
        # the original object still holds its machine after pickling
        assert run.built is not None


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(2) == 2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs(0)


# ---------------------------------------------------------------------
# Four-family equivalence: serial ≡ parallel ≡ cached ≡ resumed
# ---------------------------------------------------------------------

FAMILIES = ("fig", "churn", "fleet", "fuzz")


def family_cells() -> dict[str, Cell]:
    """One representative, deliberately cheap cell per cell family.

    Every sweep the repo plans — figure grids, churn stories, fleet
    host-epochs, fuzz corpus cases — reduces to one of these shapes,
    so pinning the execution-path contract here pins it everywhere.
    """
    faults = make_stories(fast=True)[2]  # pcpu offline/online, 2 events
    return {
        "fig": Cell(
            run_scenario,
            dict(
                scenario=GRID_SCENARIOS[0], policy=AqlPolicy(),
                warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS, seed=5,
            ),
            label="family:fig",
        ),
        "churn": Cell(
            run_churn_cell,
            dict(
                story=faults, policy_name="aql", warmup_ns=200 * MS,
                measure_ns=faults.timeline.duration_ns + 200 * MS, seed=3,
            ),
            label="family:churn",
        ),
        "fleet": Cell(
            run_host_epoch,
            dict(
                host_id="h000", host=HOST_CATALOG["small"],
                residents=(VMSpec("web0", "io"), VMSpec("lock0", "spin")),
                timeline=ChurnTimeline(()), warmup_ns=WARMUP_NS,
                measure_ns=MEASURE_NS, seed=7, scheduler="aql", clients=2,
            ),
            label="family:fleet",
        ),
        "fuzz": Cell(
            run_fuzz_case,
            dict(
                case_seed=11, policies=("aql", "xen"), max_events=2,
                inject=None,
            ),
            label="family:fuzz",
        ),
    }


@pytest.fixture(scope="module")
def family_runs(tmp_path_factory):
    """Every execution path, once per family.

    The serial leg doubles as the cold cache fill; the resumed leg
    replays the run-dir journal with no cache attached, proving the
    checkpoint store alone reconstructs the fold.
    """
    runs = {}
    for name, cell in family_cells().items():
        base = tmp_path_factory.mktemp(f"family-{name}")
        legs: dict = {"stats": {}}

        cold = ResultCache(root=base / "cache")
        [legs["serial"]] = SweepRunner(jobs=1, cache=cold).run([cell])
        assert (cold.stats.misses, cold.stats.hits) == (1, 0)

        if fork_available():
            [legs["parallel"]] = SweepRunner(jobs=2).run([cell])
        else:
            legs["parallel"] = None

        warm = ResultCache(root=base / "cache")
        [legs["cached"]] = SweepRunner(jobs=1, cache=warm).run([cell])
        assert (warm.stats.misses, warm.stats.hits) == (0, 1)

        first = Engine(
            jobs=1, cache=ResultCache(root=base / "cache"),
            run_root=base / "runs",
        )
        first.run([cell], stage=f"{name}:checkpoint")
        second = Engine(jobs=1, run_root=base / "runs")
        [legs["resumed"]] = second.run([cell], stage=f"{name}:resume")
        legs["stats"]["checkpoint"] = dict(first.stats)
        legs["stats"]["resume"] = dict(second.stats)
        first.close()
        second.close()
        runs[name] = legs
    return runs


class TestFamilyEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_serial_parallel_cached_resumed_byte_identical(
        self, family, family_runs
    ):
        """The headline contract, per family, at pickle-payload level.

        The payload is the unit the cache and the checkpoint journal
        store, so byte equality here means every execution path would
        also *store* the identical artefact.
        """
        legs = family_runs[family]
        baseline = pickle.dumps(legs["serial"])
        assert pickle.dumps(legs["cached"]) == baseline
        assert pickle.dumps(legs["resumed"]) == baseline
        if legs["parallel"] is None:
            pytest.skip("parallel leg needs the fork start method")
        assert pickle.dumps(legs["parallel"]) == baseline

    @pytest.mark.parametrize("family", FAMILIES)
    def test_resume_leg_never_re_executes(self, family, family_runs):
        stats = family_runs[family]["stats"]
        # checkpoint engine folded the warm cache hit into its journal
        assert stats["checkpoint"] == {
            "ran": 0, "hit": 1, "resumed": 0, "sweeps": 1
        }
        # the fresh engine replayed the journal — cache detached
        assert stats["resume"] == {
            "ran": 0, "hit": 0, "resumed": 1, "sweeps": 1
        }

    def test_families_cover_distinct_cell_functions(self):
        cells = family_cells()
        assert set(cells) == set(FAMILIES)
        functions = {cell.fn.__module__ for cell in cells.values()}
        assert functions == {
            "repro.experiments.runner", "repro.experiments.churn",
            "repro.fleet.model", "repro.fuzz.corpus",
        }
