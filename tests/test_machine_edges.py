"""Edge-case tests for the machine: migration, reconfiguration, caps."""

import pytest

from repro.core.aql import AqlScheduler
from repro.guest.phases import Acquire, Compute, Release
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread
from repro.hardware.specs import xeon_e5_4603
from repro.hypervisor.machine import Machine
from repro.hypervisor.pools import PoolPlan
from repro.sim.units import MS, SEC


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


class TestSocketMigration:
    def test_thread_cache_evicted_on_socket_change(self):
        """Moving a vCPU to another socket leaves no stale warm state:
        the thread's footprint is evicted from the old LLC."""
        machine = Machine(xeon_e5_4603(), seed=0)
        from repro.workloads.profiles import llcf_profile

        vm = machine.new_vm("vm", 1)
        thread = GuestThread("t", hog_body, profile=llcf_profile(machine.spec))
        vm.guest.add_thread(thread)
        socket0, socket1 = machine.topology.sockets[:2]
        plan = PoolPlan()
        plan.add("a", socket0.pcpus, 30 * MS, [vm.vcpus[0]])
        plan.add(
            "rest",
            [p for s in machine.topology.sockets[1:] for p in s.pcpus],
            30 * MS,
            [],
        )
        machine.apply_pool_plan(plan)
        machine.run(200 * MS)
        machine.sync()
        assert socket0.llc.occupancy_of(thread) > 0
        # migrate to socket 1
        plan2 = PoolPlan()
        plan2.add("b", socket1.pcpus, 30 * MS, [vm.vcpus[0]])
        plan2.add(
            "rest2",
            [p for s in machine.topology.sockets if s is not socket1
             for p in s.pcpus],
            30 * MS,
            [],
        )
        machine.apply_pool_plan(plan2)
        machine.run(200 * MS)
        machine.sync()
        assert socket0.llc.occupancy_of(thread) == 0.0
        assert socket1.llc.occupancy_of(thread) > 0


class TestReconfigureUnderLoad:
    def test_plan_applied_while_spinning(self):
        """A pool plan landing mid-spin must not lose the lock state."""
        machine = Machine(seed=0, default_quantum_ns=10 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 10 * MS)
        vm = machine.new_vm("vm", 2, weight=512)
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)
        lock = SpinLock("l")
        jobs = []

        def worker(thread):
            while True:
                yield Acquire(lock)
                yield Compute(3_000_000)
                yield Release(lock)
                jobs.append(thread.name)

        vm.guest.add_thread(GuestThread("a", worker), vm.vcpus[0])
        vm.guest.add_thread(GuestThread("b", worker), vm.vcpus[1])
        machine.run(55 * MS)  # mid-flight, someone is spinning/holding
        plan = PoolPlan()
        plan.add("q", machine.topology.pcpus, 1 * MS, list(vm.vcpus))
        machine.apply_pool_plan(plan)
        before = len(jobs)
        machine.run(500 * MS)
        assert len(jobs) > before  # progress continues after the move

    def test_repeated_reconfiguration_is_stable(self):
        machine = Machine(seed=0)
        vms = [machine.new_vm(f"vm{i}", 1) for i in range(4)]
        threads = []
        for vm in vms:
            t = GuestThread(vm.name, hog_body)
            vm.guest.add_thread(t)
            threads.append(t)
        machine.run(50 * MS)
        pcpus = machine.topology.pcpus
        for round_index in range(10):
            plan = PoolPlan()
            split = (round_index % 7) + 1
            plan.add(
                "a", pcpus[:split], 1 * MS, [vm.vcpus[0] for vm in vms[:2]]
            )
            plan.add(
                "b", pcpus[split:], 90 * MS, [vm.vcpus[0] for vm in vms[2:]]
            )
            machine.apply_pool_plan(plan)
            machine.run(30 * MS)
        machine.sync()
        for t in threads:
            assert t.instructions_retired > 0

    def test_blocked_vcpus_survive_reconfiguration(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("idle", 1)  # no threads: stays blocked
        runner = machine.new_vm("runner", 1)
        runner.guest.add_thread(GuestThread("r", hog_body))
        machine.run(50 * MS)
        plan = PoolPlan()
        plan.add("all", machine.topology.pcpus, 5 * MS,
                 [vm.vcpus[0], runner.vcpus[0]])
        machine.apply_pool_plan(plan)
        machine.run(50 * MS)
        from repro.hypervisor.vm import VCpuState

        assert vm.vcpus[0].state == VCpuState.BLOCKED
        assert runner.vcpus[0].run_ns_total > 0


class TestAqlConfinement:
    def test_manager_respects_pcpu_restriction(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        for i in range(4):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            vm.guest.add_thread(GuestThread(f"t{i}", hog_body))
        manager = AqlScheduler(machine, pcpus=pool.pcpus[:2]).attach()
        machine.run(1 * SEC)
        allowed = set(machine.topology.pcpus[:2])
        for p in machine.pools:
            if p.vcpus:
                assert set(p.pcpus) <= allowed

    def test_restricted_plan_reserves_other_pcpus(self):
        from repro.core.calibration import PAPER_BEST_QUANTA
        from repro.core.clustering import TypedVCpu, build_pool_plan
        from repro.core.types import VCpuType

        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        typed = [TypedVCpu(v, VCpuType.LLCF) for v in vm.vcpus]
        plan = build_pool_plan(
            machine.topology,
            typed,
            PAPER_BEST_QUANTA,
            pcpus=machine.topology.pcpus[:2],
        )
        plan.validate(machine.topology.pcpus, vm.vcpus)
        reserved = [e for e in plan.entries if e[0] == "reserved"]
        assert len(reserved) == 1
        assert len(reserved[0][1]) == 6  # the other six cores
