"""Tests for the AQL_Sched manager and the calibration driver."""

import pytest

from repro.core.aql import AqlScheduler, _plan_signature
from repro.core.calibration import (
    PAPER_BEST_QUANTA,
    run_calibration,
)
from repro.core.types import VCpuType
from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import llcf_profile, llco_profile


def build_mixed_machine(seed=0):
    """6 LLCF + 2 LLCO single-vCPU VMs on a 2-pCPU pool.

    The trasher ratio mirrors scenario S5; a population dominated by
    concurrent streaming would legitimately re-type LLCF as LLCO (the
    paper notes the classification is environment-dependent).
    """
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
    vms = []
    for i in range(6):
        vm = machine.new_vm(f"llcf{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        CpuBurnWorkload(f"f{i}", llcf_profile(machine.spec)).install(machine, vm)
        vms.append(vm)
    for i in range(2):
        vm = machine.new_vm(f"llco{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        CpuBurnWorkload(f"o{i}", llco_profile(machine.spec)).install(machine, vm)
        vms.append(vm)
    return machine, vms, pool


class TestManager:
    def test_decisions_happen_every_window(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()
        machine.run(1 * SEC)
        # window = 4 x 30 ms = 120 ms -> ~8 decisions in 1 s
        assert manager.decisions == 8

    def test_plan_applied_and_types_recorded(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()
        machine.run(1 * SEC)
        assert manager.reconfigurations >= 1
        types = set(manager.last_types.values())
        assert VCpuType.LLCF in types
        assert VCpuType.LLCO in types
        quanta = {pool.quantum_ns for pool in machine.pools if pool.vcpus}
        assert 90 * MS in quanta  # LLCF cluster got its quantum

    def test_unchanged_layout_not_reapplied(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()
        machine.run(2 * SEC)
        # steady workload: far fewer reconfigurations than decisions
        assert manager.reconfigurations < manager.decisions

    def test_oracle_mode_bypasses_vtrs(self):
        machine, vms, pool = build_mixed_machine()
        oracle = {
            vm.vcpus[0].vcpu_id: (
                VCpuType.LLCF if vm.name.startswith("llcf") else VCpuType.LLCO
            )
            for vm in vms
        }
        manager = AqlScheduler(machine, pcpus=pool.pcpus, type_oracle=oracle).attach()
        machine.run(500 * MS)  # past the initial cold-start delay
        assert manager.last_types[vms[0].vcpus[0].vcpu_id] == VCpuType.LLCF

    def test_uniform_quantum_override(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus, uniform_quantum_ns=10 * MS).attach()
        machine.run(500 * MS)
        for pool in machine.pools:
            assert pool.quantum_ns == 10 * MS

    def test_attach_idempotent(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus)
        manager.attach()
        manager.attach()
        machine.run(130 * MS)
        assert manager.decisions == 1

    def test_untyped_vcpus_treated_as_filler(self):
        machine = Machine(seed=0)
        machine.new_vm("idle", 1)  # never runs anything
        manager = AqlScheduler(machine)
        types = manager.current_types()
        assert list(types.values()) == [VCpuType.LOLCF]


class TestPlanSignature:
    def test_signature_ignores_entry_order(self):
        machine, _, pool = build_mixed_machine()
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()
        machine.run(200 * MS)
        from repro.core.clustering import TypedVCpu, build_pool_plan

        typed = [
            TypedVCpu(v, VCpuType.LLCF) for v in machine.all_vcpus
        ]
        plan_a = build_pool_plan(machine.topology, typed, PAPER_BEST_QUANTA)
        plan_b = build_pool_plan(machine.topology, typed, PAPER_BEST_QUANTA)
        plan_b.entries = list(reversed(plan_b.entries))
        assert _plan_signature(plan_a) == _plan_signature(plan_b)


class TestCalibrationDriver:
    def test_small_calibration_run(self):
        """A fast 2-kind sweep exercises the whole driver path."""
        result = run_calibration(
            quanta_ms=(1, 30, 90),
            consolidations=(4,),
            kinds=("llcf", "lolcf"),
            warmup_ns=300 * MS,
            measure_ns=600 * MS,
            seed=1,
        )
        series = result.normalized_series("llcf", 4)
        assert series[30] == pytest.approx(1.0)
        assert series[1] > series[90]  # LLCF prefers long quanta
        assert result.best_quanta[VCpuType.LLCF] == 90 * MS
        assert result.best_quanta[VCpuType.LOLCF] is None

    def test_reference_quantum_required(self):
        with pytest.raises(ValueError):
            run_calibration(quanta_ms=(1, 10))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_calibration(
                kinds=("quantum-foam",),
                warmup_ns=10 * MS,
                measure_ns=10 * MS,
            )

    def test_paper_best_quanta_constants(self):
        assert PAPER_BEST_QUANTA[VCpuType.IOINT] == 1 * MS
        assert PAPER_BEST_QUANTA[VCpuType.CONSPIN] == 1 * MS
        assert PAPER_BEST_QUANTA[VCpuType.LLCF] == 90 * MS
        assert PAPER_BEST_QUANTA[VCpuType.LOLCF] is None
        assert PAPER_BEST_QUANTA[VCpuType.LLCO] is None
