"""Unit and property tests for the phased execution engine.

Covers what the crash suite (a subprocess integration test) cannot
pin precisely:

* phase structure and event narration of a single sweep;
* the work-stealing determinism property — *any* worker count and
  *any* queue-order permutation folds the identical results
  (Hypothesis, over the toy cells in ``tests/engine_cells.py``);
* the KeyboardInterrupt regression: a cell raising Ctrl-C mid-sweep
  must emit ``Interrupted``, flush the checkpoint journal, leave no
  stranded ``.tmp-*`` cache files, and re-raise;
* worker-crash detection (a worker SIGKILLed mid-cell);
* run-directory identity errors (salt mismatch, missing explicit
  resume id).
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import (
    Cell,
    Engine,
    Finished,
    Interrupted,
    PhaseStarted,
    ResultCache,
    RunDirError,
    WorkerCrash,
)
from repro.exec.engine import resolve_jobs
from repro.exec.queue import fork_available
from tests.engine_cells import (
    arith_cell,
    make_cells,
    make_interrupting_cells,
    suicide_cell,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)


class TestPhases:
    def test_single_sweep_narrates_all_phases_in_order(self):
        events = []
        engine = Engine(jobs=1, sinks=[events.append])
        results = engine.run(make_cells(3), stage="unit")
        assert [r["value"] for r in results] == [
            arith_cell(n)["value"] for n in range(3)
        ]
        phases = [
            e.phase for e in events if isinstance(e, PhaseStarted)
        ]
        assert phases == ["plan", "probe", "execute", "fold"]
        assert [e.seq for e in events] == list(range(len(events)))
        terminal = events[-1]
        assert isinstance(terminal, Finished)
        assert (terminal.cells, terminal.ran) == (3, 3)
        assert all(e.stage == "unit" for e in events)

    def test_second_sweep_continues_sequence(self):
        events = []
        engine = Engine(jobs=1, sinks=[events.append])
        engine.run(make_cells(2))
        first_len = len(events)
        engine.run(make_cells(2))
        assert events[first_len].seq == events[first_len - 1].seq + 1
        assert engine.stats["sweeps"] == 2

    def test_cache_hits_skip_execute(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        Engine(jobs=1, cache=cache).run(make_cells(3))
        events = []
        engine = Engine(jobs=1, cache=cache, sinks=[events.append])
        engine.run(make_cells(3))
        assert engine.stats == {
            "ran": 0, "hit": 3, "resumed": 0, "sweeps": 1
        }
        finished = [e for e in events if isinstance(e, Finished)]
        assert finished[0].hits == 3 and finished[0].ran == 0

    def test_duplicate_key_cells_both_fold(self):
        # two cells with identical (fn, kwargs) share a cache key but
        # both positions must still receive the result
        cells = make_cells(1) + make_cells(1)
        results = Engine(jobs=1).run(cells)
        assert results[0] == results[1] == arith_cell(0)


class TestDeterminism:
    @needs_fork
    @settings(max_examples=12, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=4),
        schedule=st.permutations(list(range(5))),
    )
    def test_any_interleaving_folds_identically(self, workers, schedule):
        """Work-stealing order and worker count never leak into results.

        Byte-identity is per cell — the pickled payload is the unit
        the cache and the checkpoint journal store — so pickle's
        cross-object memoisation of a whole list is out of scope.
        """
        expected = [arith_cell(n) for n in range(5)]
        engine = Engine(jobs=workers, schedule=schedule)
        results = engine.run(make_cells(5))
        assert [pickle.dumps(r) for r in results] == [
            pickle.dumps(e) for e in expected
        ]

    @needs_fork
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = Engine(jobs=1).run(make_cells(6))
        parallel = Engine(jobs=3).run(make_cells(6))
        assert [pickle.dumps(r) for r in serial] == [
            pickle.dumps(r) for r in parallel
        ]


class TestKeyboardInterrupt:
    """Regression: Ctrl-C used to strand cache temp files silently."""

    def _interrupt(self, tmp_path, jobs):
        cache = ResultCache(root=tmp_path / "cache")
        events = []
        engine = Engine(
            jobs=jobs,
            cache=cache,
            run_root=tmp_path / "runs",
            sinks=[events.append],
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(make_interrupting_cells(5, interrupt_at=3))
        return engine, events

    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_interrupt_emits_event_and_flushes(self, tmp_path, jobs):
        engine, events = self._interrupt(tmp_path, jobs)
        terminal = events[-1]
        assert isinstance(terminal, Interrupted)
        assert terminal.reason == "keyboard-interrupt"
        # journal durable: whatever completed before the interrupt is
        # on disk and a fresh engine can read it back
        assert engine.run_dir is not None
        journal = engine.run_dir.completed_keys()
        assert len(journal) == terminal.completed
        # cache hygiene: no stranded atomic-write temp files anywhere
        assert list((tmp_path / "cache").rglob(".tmp-*")) == []
        assert list((tmp_path / "runs").rglob(".tmp-*")) == []

    def test_interrupted_run_resumes(self, tmp_path):
        engine, _ = self._interrupt(tmp_path, jobs=1)
        completed = engine._completed
        engine.close()
        # drop the interrupting trigger: same cells, benign argument
        cells = make_interrupting_cells(5, interrupt_at=99)
        fresh = Engine(jobs=1, run_root=tmp_path / "runs")
        results = fresh.run(cells)
        assert results == [n * n for n in range(5)]
        # the interrupting cells hash differently (interrupt_at is in
        # the key), so nothing resumes across the argument change —
        # but the journal from the interrupted run was still readable
        assert completed >= 1


class TestWorkerCrash:
    @needs_fork
    def test_dead_worker_raises_and_interrupts(self, tmp_path):
        events = []
        cells = [
            Cell(suicide_cell, dict(n=n, die_at=2), label=f"s:{n}")
            for n in range(4)
        ]
        engine = Engine(
            jobs=2, run_root=tmp_path / "runs", sinks=[events.append]
        )
        with pytest.raises(WorkerCrash):
            engine.run(cells)
        terminal = events[-1]
        assert isinstance(terminal, Interrupted)
        assert terminal.reason == "worker-crash"


class TestRunDirIdentity:
    def test_explicit_resume_of_missing_run_errors(self, tmp_path):
        engine = Engine(
            jobs=1, run_root=tmp_path, run_id="run-doesnotexist"
        )
        with pytest.raises(RunDirError, match="no manifest"):
            engine.run(make_cells(2))

    def test_resume_without_run_root_errors(self):
        with pytest.raises(ValueError, match="run root"):
            Engine(jobs=1, run_id="run-abc")

    def test_salt_mismatch_refuses_checkpoints(self, tmp_path):
        Engine(jobs=1, run_root=tmp_path, salt="salt-one").run(
            make_cells(2)
        )
        manifest = next(tmp_path.glob("*/manifest.json"))
        run_id = json.loads(manifest.read_text())["run_id"]
        stale = Engine(
            jobs=1, run_root=tmp_path, run_id=run_id, salt="salt-two"
        )
        with pytest.raises(RunDirError, match="different code version"):
            stale.run(make_cells(2))

    def test_same_plan_derives_same_run_id(self, tmp_path):
        one = Engine(jobs=1, run_root=tmp_path / "a", salt="s")
        one.run(make_cells(3))
        two = Engine(jobs=1, run_root=tmp_path / "b", salt="s")
        two.run(make_cells(3))
        assert one.run_dir.run_id == two.run_dir.run_id
        other = Engine(jobs=1, run_root=tmp_path / "c", salt="s")
        other.run(make_cells(4))
        assert other.run_dir.run_id != one.run_dir.run_id


class TestConfig:
    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert resolve_jobs(2) == 2  # explicit wins
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_kill_after_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_KILL_AFTER", "4")
        assert Engine(jobs=1).kill_after == 4
        assert Engine(jobs=1, kill_after=1).kill_after == 1
