"""Unit tests for the telemetry registry and its exposition formats."""

import pytest

from repro.telemetry import (
    Telemetry,
    TelemetryRegistry,
    prometheus_text,
    qualified_name,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    RingBuffer,
    canonical_labels,
)


class TestRingBuffer:
    def test_fills_then_wraps_oldest_first(self):
        ring = RingBuffer(capacity=3)
        for i in range(5):
            ring.push(i * 10, float(i))
        assert len(ring) == 3
        assert ring.items() == [(20, 2.0), (30, 3.0), (40, 4.0)]

    def test_partial_fill_keeps_order(self):
        ring = RingBuffer(capacity=8)
        ring.push(1, 1.0)
        ring.push(2, 2.0)
        assert ring.items() == [(1, 1.0), (2, 2.0)]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)


class TestInstruments:
    def test_counter_get_or_create_identity(self):
        registry = TelemetryRegistry()
        a = registry.counter("dispatches", vcpu="web.0")
        b = registry.counter("dispatches", vcpu="web.0")
        other = registry.counter("dispatches", vcpu="web.1")
        assert a is b
        assert a is not other
        a.inc()
        a.inc(2.0)
        assert b.value == 3.0

    def test_same_name_different_kind_distinct(self):
        registry = TelemetryRegistry()
        counter = registry.counter("load")
        gauge = registry.gauge("load")
        assert counter is not gauge
        assert len(registry) == 2

    def test_gauge_set_and_add(self):
        gauge = TelemetryRegistry().gauge("pool_load", pool="s0.C1")
        gauge.set(4.0)
        gauge.add(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_min_max_mean(self):
        hist = TelemetryRegistry().histogram("slice_ns")
        for value in (5_000.0, 50_000.0, 40_000_000.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 5_000.0
        assert hist.max == 40_000_000.0
        assert hist.mean() == pytest.approx(13_351_666.6667)
        # bucket_counts has one overflow slot beyond the last bound
        assert len(hist.bucket_counts) == len(DEFAULT_BUCKETS) + 1
        assert hist.bucket_counts[0] == 1  # <= 10_000
        assert sum(hist.bucket_counts) == 3
        # value mirrors count so sampling treats it like a counter
        assert hist.value == 3.0

    def test_labels_canonicalised(self):
        assert canonical_labels({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))
        assert qualified_name("m", canonical_labels({"b": 1, "a": 2})) == (
            "m{a=2,b=1}"
        )
        assert qualified_name("m", ()) == "m"


class TestSamplingAndSummary:
    def test_sample_pushes_every_instrument(self):
        registry = TelemetryRegistry(ring=4)
        counter = registry.counter("events")
        counter.inc(5.0)
        registry.sample(100)
        counter.inc()
        registry.sample(200)
        assert registry.series_of("events") == [(100, 5.0), (200, 6.0)]
        assert registry.series_of("missing") == []
        assert registry.samples_taken == 2

    def test_summary_sorted_flat_and_picklable(self):
        import pickle

        registry = TelemetryRegistry()
        registry.counter("z_metric").inc()
        registry.counter("a_metric", vcpu="web.0").inc(2.0)
        summary = registry.summary()
        assert list(summary) == sorted(summary)
        assert summary["a_metric{vcpu=web.0}"] == 2.0
        assert pickle.loads(pickle.dumps(summary)) == summary

    def test_telemetry_facade_summary_merges_audit_and_spans(self):
        telemetry = Telemetry(enabled=True)
        telemetry.registry.counter("x").inc()
        telemetry.tracer.instant(10, "mark")
        summary = telemetry.summary()
        assert summary["x"] == 1.0
        assert summary["spans_recorded"] == 1.0
        assert summary["audit_type_flips"] == 0.0


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = TelemetryRegistry()
        registry.counter("dispatches", vcpu="web.0").inc(7.0)
        registry.gauge("pool_load").set(1.5)
        text = prometheus_text(registry)
        assert "# TYPE repro_dispatches counter" in text
        assert 'repro_dispatches{vcpu="web.0"} 7.0' in text
        assert "repro_pool_load 1.5" in text

    def test_histogram_cumulative_buckets(self):
        registry = TelemetryRegistry()
        hist = registry.histogram("lat", bounds=(10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(5000.0)
        text = prometheus_text(registry)
        assert 'repro_lat_bucket{le="10.0"} 1' in text
        assert 'repro_lat_bucket{le="100.0"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 5055.0" in text
        assert "repro_lat_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(TelemetryRegistry()) == ""

    def test_label_values_escape_backslash_quote_and_newline(self):
        registry = TelemetryRegistry()
        registry.counter("odd", tag='a"b').inc()
        registry.counter("odd", tag="c\\d").inc()
        registry.counter("odd", tag="e\nf").inc()
        text = prometheus_text(registry)
        # spec order matters: backslash first, so the quote/newline
        # escapes are not themselves re-escaped
        assert 'repro_odd{tag="a\\"b"} 1.0' in text
        assert 'repro_odd{tag="c\\\\d"} 1.0' in text
        assert 'repro_odd{tag="e\\nf"} 1.0' in text
        assert "\ne\nf" not in text  # no raw newline inside a series line

    def test_help_line_precedes_type_once_per_metric(self):
        registry = TelemetryRegistry()
        registry.counter(
            "beats", help="Heartbeats observed.", worker="0"
        ).inc()
        registry.counter("beats", worker="1").inc()  # same metric
        registry.gauge("depth").set(2.0)  # no help text
        text = prometheus_text(registry)
        lines = text.splitlines()
        help_index = lines.index("# HELP repro_beats Heartbeats observed.")
        assert lines[help_index + 1] == "# TYPE repro_beats counter"
        assert text.count("# HELP repro_beats") == 1
        assert "# HELP repro_depth" not in text
        assert "# TYPE repro_depth gauge" in text

    def test_help_text_escapes_newline_and_backslash(self):
        registry = TelemetryRegistry()
        registry.gauge("g", help="line one\nand \\ two").set(1.0)
        text = prometheus_text(registry)
        assert "# HELP repro_g line one\\nand \\\\ two" in text

    def test_help_set_on_first_declaration_wins(self):
        registry = TelemetryRegistry()
        counter = registry.counter("c", help="first")
        assert registry.counter("c", help="second") is counter
        assert counter.help == "first"
