"""Integration tests for the machine execution engine."""

import pytest

from repro.guest.phases import Acquire, Compute, Exit, Release, Sleep, WaitEvent
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.hypervisor.pools import PoolPlan
from repro.hypervisor.vm import Priority, VCpuState
from repro.sim.units import MS, SEC, US


def make_machine(pcpus=1, quantum=30 * MS, boost=True, seed=0):
    machine = Machine(seed=seed, default_quantum_ns=quantum, boost_enabled=boost)
    if pcpus < len(machine.topology.pcpus):
        machine.create_pool("small", machine.topology.pcpus[:pcpus], quantum)
        # new VMs are added to default pool; tests move them explicitly
    return machine


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


class TestBasicExecution:
    def test_single_thread_progresses(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        t = GuestThread("t", hog_body)
        vm.guest.add_thread(t)
        machine.run(100 * MS)
        machine.sync()
        assert t.instructions_retired > 0

    def test_finite_thread_exits_and_vcpu_blocks(self):
        machine = Machine(seed=0)

        def finite(thread):
            yield Compute(1_000_000)

        vm = machine.new_vm("vm", 1)
        t = GuestThread("t", finite)
        vm.guest.add_thread(t)
        machine.run(100 * MS)
        assert t.done
        assert t.finished_at is not None
        assert vm.vcpus[0].state == VCpuState.BLOCKED

    def test_compute_duration_matches_profile(self):
        """1M instructions at 0.3 ns each ~ 0.3 ms of virtual time."""
        machine = Machine(seed=0)
        done_at = []

        def finite(thread):
            yield Compute(1_000_000)
            done_at.append(machine.sim.now)

        vm = machine.new_vm("vm", 1)
        vm.guest.add_thread(GuestThread("t", finite))
        machine.run(10 * MS)
        assert done_at, "thread never finished"
        assert done_at[0] == pytest.approx(0.3 * MS, rel=0.1)

    def test_sleep_blocks_for_duration(self):
        machine = Machine(seed=0)
        timeline = []

        def sleeper(thread):
            yield Compute(1000)
            timeline.append(machine.sim.now)
            yield Sleep(5 * MS)
            timeline.append(machine.sim.now)

        vm = machine.new_vm("vm", 1)
        vm.guest.add_thread(GuestThread("t", sleeper))
        machine.run(50 * MS)
        assert len(timeline) == 2
        assert timeline[1] - timeline[0] == pytest.approx(5 * MS, rel=0.05)

    def test_two_hogs_on_one_pcpu_timeshare(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        threads = []
        for i in range(2):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            t = GuestThread(f"t{i}", hog_body)
            vm.guest.add_thread(t)
            threads.append(t)
        machine.run(1 * SEC)
        machine.sync()
        assert threads[0].run_ns == pytest.approx(0.5 * SEC, rel=0.1)
        assert threads[1].run_ns == pytest.approx(0.5 * SEC, rel=0.1)


class TestQuantumEnforcement:
    @pytest.mark.parametrize("quantum_ms", [1, 10, 30])
    def test_dispatch_rate_tracks_quantum(self, quantum_ms):
        machine = Machine(seed=0, default_quantum_ns=quantum_ms * MS)
        pool = machine.create_pool(
            "p", machine.topology.pcpus[:1], quantum_ms * MS
        )
        vcpus = []
        for i in range(2):
            vm = machine.new_vm(f"vm{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            vm.guest.add_thread(GuestThread(f"t{i}", hog_body))
            vcpus.append(vm.vcpus[0])
        machine.run(1 * SEC)
        dispatches = sum(v.dispatch_count for v in vcpus)
        expected = 1 * SEC / (quantum_ms * MS)
        assert dispatches == pytest.approx(expected, rel=0.2)

    def test_vcpu_quantum_override_wins(self):
        machine = Machine(seed=0, default_quantum_ns=30 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        fast_vm = machine.new_vm("fast", 1)
        slow_vm = machine.new_vm("slow", 1)
        for vm in (fast_vm, slow_vm):
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            vm.guest.add_thread(GuestThread(vm.name, hog_body))
        fast_vm.vcpus[0].quantum_override = 1 * MS
        machine.run(1 * SEC)
        # the fast vCPU is dispatched far more often
        assert fast_vm.vcpus[0].dispatch_count > slow_vm.vcpus[0].dispatch_count * 3


class TestEventChannelAndBoost:
    def _io_setup(self, boost, service_instructions=10_000):
        machine = Machine(seed=0, boost_enabled=boost)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        io_vm = machine.new_vm("io", 1)
        machine.default_pool.remove_vcpu(io_vm.vcpus[0])
        pool.add_vcpu(io_vm.vcpus[0])
        port = machine.new_port(io_vm.vcpus[0], "port")
        latencies = []

        def server(thread):
            while True:
                wait = WaitEvent(port)
                yield wait
                yield Compute(service_instructions)
                latencies.append(machine.sim.now - wait.payload)

        io_vm.guest.add_thread(GuestThread("server", server))
        for i in range(3):
            vm = machine.new_vm(f"hog{i}", 1)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            vm.guest.add_thread(GuestThread(f"h{i}", hog_body))
        return machine, port, latencies

    def test_boost_gives_low_io_latency(self):
        machine, port, latencies = self._io_setup(boost=True)
        machine.start()

        def send():
            port.post(machine.sim.now)
            machine.sim.after(20 * MS, send)

        machine.sim.after(10 * MS, send)
        machine.run(1 * SEC)
        assert latencies
        mean = sum(latencies) / len(latencies)
        assert mean < 2 * MS  # boosted wake-up beats the 90 ms round

    def test_busy_vcpu_loses_boost_and_waits(self):
        """The paper's heterogeneous-IO argument: a vCPU kept busy by
        CGI work exhausts its quanta, is never BOOST-eligible, and its
        request latency becomes round-robin bound."""
        machine, port, latencies = self._io_setup(boost=True)
        # add an always-ready CGI thread on the server's vCPU
        io_vm = port.vcpu.vm
        io_vm.guest.add_thread(GuestThread("cgi", hog_body), port.vcpu)
        machine.start()

        def send():
            port.post(machine.sim.now)
            machine.sim.after(100 * MS, send)

        machine.sim.after(10 * MS, send)
        machine.run(2 * SEC)
        assert latencies
        mean = sum(latencies) / len(latencies)
        assert mean > 5 * MS  # waits behind other vCPUs' quanta

    def test_io_event_counter_increments(self):
        machine, port, _ = self._io_setup(boost=True)
        machine.start()
        port.post(machine.sim.now)
        port.post(machine.sim.now)
        assert port.vcpu.io_events == 2.0

    def test_exhausted_quantum_blocks_boost(self):
        """A vCPU preempted by quantum expiry is not BOOST-eligible."""
        machine, port, _ = self._io_setup(boost=True)
        machine.start()
        vcpu = port.vcpu
        vcpu.exhausted_last_quantum = True
        vcpu.credit = 100.0
        assert not machine.scheduler.boost_eligible(vcpu)
        vcpu.exhausted_last_quantum = False
        assert machine.scheduler.boost_eligible(vcpu)


class TestSpinExecution:
    def test_lock_holder_preemption_burns_spin_time(self):
        """Two spin threads on one pCPU: the waiter spins while the
        holder is descheduled, so spin time accumulates and PLE exits
        are recorded."""
        machine = Machine(seed=0, default_quantum_ns=10 * MS)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 10 * MS)
        vm = machine.new_vm("vm", 2, weight=512)
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)
        lock = SpinLock("l")

        def worker(thread):
            while True:
                yield Compute(100_000)
                yield Acquire(lock)
                yield Compute(3_000_000)  # ~1 ms critical section
                yield Release(lock)

        a = GuestThread("a", worker)
        b = GuestThread("b", worker)
        vm.guest.add_thread(a, vm.vcpus[0])
        vm.guest.add_thread(b, vm.vcpus[1])
        machine.run(1 * SEC)
        machine.sync()
        total_spin = a.spin_ns + b.spin_ns
        assert total_spin > 50 * MS
        total_ple = sum(v.ple.exits for v in vm.vcpus)
        assert total_ple > 0
        assert vm.spin_notifications > 0

    def test_release_wakes_oncpu_spinner_immediately(self):
        """Holder and waiter on different pCPUs: handoff is instant."""
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        lock = SpinLock("l")
        events = []

        def holder(thread):
            yield Acquire(lock)
            yield Compute(30_000_000)  # ~10 ms
            yield Release(lock)
            events.append(("released", machine.sim.now))
            yield Exit()

        def waiter(thread):
            yield Compute(3_000_000)  # arrive second
            yield Acquire(lock)
            events.append(("acquired", machine.sim.now))
            yield Release(lock)
            yield Exit()

        vm.guest.add_thread(GuestThread("h", holder), vm.vcpus[0])
        vm.guest.add_thread(GuestThread("w", waiter), vm.vcpus[1])
        machine.run(100 * MS)
        assert dict(events)["acquired"] == dict(events)["released"]


class TestPoolPlanApplication:
    def test_apply_plan_moves_vcpus(self):
        machine = Machine(seed=0)
        vms = [machine.new_vm(f"vm{i}", 1) for i in range(4)]
        for vm in vms:
            vm.guest.add_thread(GuestThread(vm.name, hog_body))
        machine.run(100 * MS)
        pcpus = machine.topology.pcpus
        plan = PoolPlan()
        plan.add("fast", pcpus[:4], 1 * MS, [vm.vcpus[0] for vm in vms[:2]])
        plan.add("slow", pcpus[4:], 90 * MS, [vm.vcpus[0] for vm in vms[2:]])
        machine.apply_pool_plan(plan)
        assert len(machine.pools) == 2
        assert vms[0].vcpus[0].pool.quantum_ns == 1 * MS
        assert vms[3].vcpus[0].pool.quantum_ns == 90 * MS
        machine.run(100 * MS)  # everything still runs
        machine.sync()
        for vm in vms:
            assert vm.vcpus[0].run_ns_total > 0

    def test_plan_validation_rejects_partial_pcpu_coverage(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        plan = PoolPlan()
        plan.add("p", machine.topology.pcpus[:2], 30 * MS, [vm.vcpus[0]])
        with pytest.raises(ValueError):
            machine.apply_pool_plan(plan)

    def test_plan_validation_rejects_unplaced_vcpu(self):
        machine = Machine(seed=0)
        machine.new_vm("vm", 1)
        plan = PoolPlan()
        plan.add("p", machine.topology.pcpus, 30 * MS, [])
        with pytest.raises(ValueError):
            machine.apply_pool_plan(plan)

    def test_plan_validation_rejects_duplicate_vcpu(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        plan = PoolPlan()
        half = machine.topology.pcpus[:4]
        rest = machine.topology.pcpus[4:]
        plan.add("a", half, 30 * MS, [vm.vcpus[0]])
        plan.add("b", rest, 30 * MS, [vm.vcpus[0]])
        with pytest.raises(ValueError):
            machine.apply_pool_plan(plan)

    def test_migration_counted_on_pool_change(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        vm.guest.add_thread(GuestThread("t", hog_body))
        machine.run(50 * MS)
        plan = PoolPlan()
        plan.add("a", machine.topology.pcpus[:4], 30 * MS, [vm.vcpus[0]])
        plan.add("b", machine.topology.pcpus[4:], 30 * MS, [])
        before = vm.vcpus[0].migrations
        machine.apply_pool_plan(plan)
        assert vm.vcpus[0].migrations == before + 1


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        def run_once():
            machine = Machine(seed=42)
            pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
            totals = []
            for i in range(3):
                vm = machine.new_vm(f"vm{i}", 1)
                machine.default_pool.remove_vcpu(vm.vcpus[0])
                pool.add_vcpu(vm.vcpus[0])
                t = GuestThread(f"t{i}", hog_body)
                vm.guest.add_thread(t)
                totals.append(t)
            machine.run(500 * MS)
            machine.sync()
            return [t.instructions_retired for t in totals]

        assert run_once() == run_once()
