"""Corpus campaigns and the CLI: clean runs, artifacts, exit codes."""

import json

import pytest

from repro.fuzz import CoverageMap, run_campaign
from repro.fuzz.cli import main


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("corpus")
    return run_campaign(5, seed=100, out_dir=out_dir), out_dir


class TestCampaign:
    def test_clean_corpus_has_no_failures(self, campaign):
        result, _ = campaign
        assert len(result.cases) == 5
        assert result.failures == []

    def test_coverage_accumulates(self, campaign):
        result, _ = campaign
        assert result.coverage.runs == 5
        assert len(result.coverage) > 10
        # the very first case visits only fresh keys
        assert result.cases[0].new_coverage > 0

    def test_coverage_report_written(self, campaign):
        result, out_dir = campaign
        assert result.report_path is not None
        report = json.loads(result.report_path.read_text())
        assert report["runs"] == 5
        assert set(report) >= {
            "runs", "distinct_keys", "distinct_alg_branches", "groups",
        }

    def test_deterministic_given_seed(self, campaign):
        result, _ = campaign
        again = run_campaign(5, seed=100)
        assert [c.failed for c in again.cases] == [
            c.failed for c in result.cases
        ]
        assert again.coverage.counts == result.coverage.counts

    def test_coverage_merge(self):
        a, b = CoverageMap(), CoverageMap()
        a.hit("event:vm_boot", 2)
        b.hit("event:vm_boot")
        b.hit("ledger:plan", 4)
        b.runs = 3
        a.merge(b)
        assert a.counts == {"event:vm_boot": 3, "ledger:plan": 4}
        assert a.runs == 3
        assert a.novelty(["event:vm_boot", "alg2:spill"]) == 1


class TestCli:
    def test_run_and_gate_pass(self, tmp_path, capsys):
        # pinned to aql so the Algorithm 1/2 branch gate has substance
        status = main([
            "run", "--cases", "2", "--seed", "100", "--quiet",
            "--policies", "aql",
            "--out-dir", str(tmp_path), "--min-alg-branches", "3",
            "--require-invariant", "credit_fairness",
            "--require-invariant", "no_lost_io",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "coverage over 2 runs" in out
        assert (tmp_path / "coverage_report.json").exists()

    def test_gate_fails_on_impossible_branch_floor(self, capsys):
        status = main([
            "run", "--cases", "1", "--seed", "100", "--quiet",
            "--no-shrink", "--min-alg-branches", "10000",
        ])
        assert status == 1
        assert "GATE" in capsys.readouterr().out

    def test_expect_caught_fails_on_clean_corpus(self, capsys):
        status = main([
            "run", "--cases", "1", "--seed", "100", "--quiet",
            "--no-shrink", "--expect-caught",
        ])
        assert status == 1
        assert "NOT caught" in capsys.readouterr().out

    def test_gen_then_replay_round_trip(self, tmp_path, capsys):
        case = tmp_path / "case.json"
        assert main(["gen", "--seed", "100", "--out", str(case)]) == 0
        assert case.exists()
        assert main(["replay", str(case)]) == 0
        assert "replayed seed 100" in capsys.readouterr().out
