"""Diurnal traffic generation: determinism and plan validity."""

import pytest

from repro.fleet import (
    STORIES,
    DiurnalStory,
    TrafficGenerator,
    VMSpec,
    event_offset_ns,
)
from repro.sim.units import MS


def _drive(generator, epochs):
    """Run the generator open-loop, applying each plan to a population."""
    alive: dict[str, VMSpec] = {}
    plans = []
    for epoch in range(epochs):
        plan = generator.epoch_plan(epoch, alive)
        for name in plan.departures:
            del alive[name]
        for spec in plan.arrivals:
            alive[spec.name] = spec
        for name, mode in plan.phase_changes:
            alive[name] = VMSpec(name=name, mode=mode)
        plans.append(plan)
    return plans, alive


class TestDiurnalStory:
    def test_stock_stories_are_valid(self):
        assert set(STORIES) == {"weekday", "batchnight"}

    def test_shape_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            DiurnalStory("bad", shape=(1.2,), flavor_mix=(("web", 1.0),))

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError, match="flavour"):
            DiurnalStory("bad", shape=(0.5,), flavor_mix=(("gpu", 1.0),))

    def test_churn_bounds(self):
        with pytest.raises(ValueError, match="churn"):
            DiurnalStory(
                "bad", shape=(0.5,), flavor_mix=(("web", 1.0),), churn=1.0
            )


class TestDeterminism:
    def test_same_seed_same_plans(self):
        story = STORIES["weekday"]
        first, _ = _drive(TrafficGenerator(story, capacity=24, seed=7), 8)
        second, _ = _drive(TrafficGenerator(story, capacity=24, seed=7), 8)
        assert first == second

    def test_different_seed_diverges(self):
        story = STORIES["weekday"]
        first, _ = _drive(TrafficGenerator(story, capacity=24, seed=7), 4)
        second, _ = _drive(TrafficGenerator(story, capacity=24, seed=8), 4)
        assert first != second

    def test_event_offset_in_span(self):
        span = 100 * MS
        offsets = {
            event_offset_ns(0, epoch, f"vm{i:05d}", span)
            for epoch in range(3)
            for i in range(20)
        }
        assert all(MS <= off <= span for off in offsets)
        assert len(offsets) > 1  # actually spread, not constant


class TestPlanValidity:
    def test_population_tracks_curve(self):
        story = STORIES["weekday"]
        capacity = 40
        generator = TrafficGenerator(story, capacity=capacity, seed=3)
        alive: dict[str, VMSpec] = {}
        for epoch in range(12):
            plan = generator.epoch_plan(epoch, alive)

            assert plan.target == generator.target(epoch)
            assert plan.target <= capacity
            # departures name distinct alive VMs
            assert len(set(plan.departures)) == len(plan.departures)
            assert set(plan.departures) <= set(alive)
            # arrivals are fresh, unique names with catalog modes
            arrival_names = [spec.name for spec in plan.arrivals]
            assert len(set(arrival_names)) == len(arrival_names)
            assert not set(arrival_names) & set(alive)
            # phase changes hit survivors and always switch the mode
            survivors = set(alive) - set(plan.departures)
            for name, mode in plan.phase_changes:
                assert name in survivors
                assert mode != alive[name].mode

            for name in plan.departures:
                del alive[name]
            for spec in plan.arrivals:
                alive[spec.name] = spec
            for name, mode in plan.phase_changes:
                alive[name] = VMSpec(name=name, mode=mode)
            # the plan lands the population exactly on target
            assert len(alive) == plan.target

    def test_names_never_reused_after_departure(self):
        story = STORIES["batchnight"]
        generator = TrafficGenerator(story, capacity=20, seed=11)
        seen: set[str] = set()
        alive: dict[str, VMSpec] = {}
        for epoch in range(10):
            plan = generator.epoch_plan(epoch, alive)
            for spec in plan.arrivals:
                assert spec.name not in seen
                seen.add(spec.name)
            for name in plan.departures:
                del alive[name]
            for spec in plan.arrivals:
                alive[spec.name] = spec

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TrafficGenerator(STORIES["weekday"], capacity=0, seed=0)
