"""The event-stream contract: typed round-trips, golden JSONL, validator.

Satellites of the engine work:

* a **golden snapshot** of a full engine narration (ran → resumed →
  hit), normalised for wall-clock noise, pinning the JSONL schema and
  its stable field order — ``pytest --update-golden`` rewrites it;
* unit tests for :func:`repro.exec.events.validate_events`, the same
  helper the CI ``engine-smoke`` job runs via
  ``python -m repro.exec.events``.
"""

import json
from pathlib import Path

import pytest

from repro.exec import Cell, Engine, JsonlSink, ResultCache
from repro.exec.events import (
    EVENT_TYPES,
    CellFinished,
    Finished,
    Interrupted,
    PhaseStarted,
    event_from_json,
    main as events_main,
    normalize_events,
    read_event_log,
    validate_events,
)
from tests.engine_cells import make_cells

GOLDEN = Path(__file__).parent / "golden" / "engine_events.jsonl"

#: serialisation identical to JsonlSink's, so the golden pins the
#: exact on-disk byte shape (field order included)
def _dump(record: dict) -> str:
    return json.dumps(record, separators=(", ", ": "))


def narrate(tmp_path: Path) -> list[dict]:
    """A deterministic three-act narration: ran, resumed, hit."""
    log = tmp_path / "events.jsonl"
    sink = JsonlSink(log)
    cache = ResultCache(root=tmp_path / "cache")
    cells = make_cells(2)

    # act 1: cold — every cell executes and checkpoints
    one = Engine(
        jobs=1, cache=cache, run_root=tmp_path / "runs",
        salt="golden-salt", sinks=[sink],
    )
    one.run(cells, stage="act1")
    # act 2: a fresh engine over the same run dir — pure journal replay
    two = Engine(
        jobs=1, run_root=tmp_path / "runs",
        salt="golden-salt", sinks=[sink],
    )
    two.run(cells, stage="act2")
    # act 3: no run dir, warm cache — hits
    three = Engine(jobs=1, cache=cache, salt="golden-salt", sinks=[sink])
    three.run(cells, stage="act3")
    # closing an engine closes its sinks — the shared log sink is
    # shared, so every engine stays open until the narration is done
    one.close()
    two.close()
    three.close()
    return read_event_log(log)


class TestGoldenSnapshot:
    def test_narration_matches_golden(self, tmp_path, update_golden):
        records = normalize_events(narrate(tmp_path))
        lines = [_dump(record) for record in records]
        if update_golden:
            GOLDEN.write_text("\n".join(lines) + "\n", encoding="utf-8")
            pytest.skip("golden rewritten")
        committed = GOLDEN.read_text(encoding="utf-8").splitlines()
        assert lines == committed, (
            "engine event narration drifted from the golden snapshot; "
            "run pytest --update-golden if the change is intentional"
        )

    def test_narration_is_valid_and_complete(self, tmp_path):
        records = narrate(tmp_path)
        assert validate_events(records) == []
        outcomes = [
            r["outcome"] for r in records
            if r.get("kind") == "cell_finished"
        ]
        assert outcomes == ["ran", "ran", "resumed", "resumed", "hit", "hit"]


class TestRoundTrip:
    def test_every_kind_round_trips(self):
        samples = [
            PhaseStarted(seq=0, phase="plan", stage="s", cells=3),
            CellFinished(
                seq=1, index=0, total=3, label="c", outcome="ran",
                seconds=0.25, key="k", stage="s",
            ),
            Interrupted(seq=2, completed=1, total=3, stage="s"),
            Finished(seq=3, cells=3, ran=2, hits=1, resumed=0),
        ]
        for event in samples:
            doc = event.to_json()
            assert list(doc)[0] == "kind"  # stable field order
            assert event_from_json(doc) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_json({"kind": "nope", "seq": 0})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            event_from_json({"kind": "finished", "seq": 0, "cells": 1})

    def test_registry_covers_all_kinds(self):
        assert set(EVENT_TYPES) == {
            "phase_started", "cell_scheduled", "cell_finished",
            "checkpoint_written", "interrupted", "finished",
        }


def _minimal_sweep(n_cells: int = 1, seq0: int = 0) -> list[dict]:
    events = []
    seq = seq0
    for phase in ("plan", "probe"):
        events.append({
            "kind": "phase_started", "seq": seq, "phase": phase,
            "stage": "", "cells": n_cells,
        })
        seq += 1
    events.append({
        "kind": "phase_started", "seq": seq, "phase": "execute",
        "stage": "", "cells": n_cells,
    })
    seq += 1
    for index in range(n_cells):
        events.append({
            "kind": "cell_scheduled", "seq": seq, "index": index,
            "label": f"c{index}", "key": None, "stage": "",
        })
        seq += 1
    for index in range(n_cells):
        events.append({
            "kind": "cell_finished", "seq": seq, "index": index,
            "total": n_cells, "label": f"c{index}", "outcome": "ran",
            "seconds": 0.1, "key": None, "stage": "",
        })
        seq += 1
    events.append({
        "kind": "phase_started", "seq": seq, "phase": "fold",
        "stage": "", "cells": n_cells,
    })
    seq += 1
    events.append({
        "kind": "finished", "seq": seq, "cells": n_cells,
        "ran": n_cells, "hits": 0, "resumed": 0, "stage": "",
    })
    return events


class TestValidator:
    def test_minimal_sweep_is_valid(self):
        assert validate_events(_minimal_sweep(2)) == []

    def test_empty_log_invalid(self):
        assert validate_events([]) == ["empty event log"]

    def test_must_open_with_plan(self):
        events = _minimal_sweep(1)[1:]
        assert any(
            "must open with phase_started(plan)" in p
            for p in validate_events(events)
        )

    def test_seq_must_be_monotone(self):
        events = _minimal_sweep(2)
        events[3]["seq"] = events[2]["seq"]
        assert any("not after" in p for p in validate_events(events))

    def test_cell_finishing_twice_flagged(self):
        events = _minimal_sweep(2)
        finished = [e for e in events if e["kind"] == "cell_finished"]
        finished[1]["index"] = finished[0]["index"]
        assert any("finished twice" in p for p in validate_events(events))

    def test_ran_requires_scheduled(self):
        events = [
            e for e in _minimal_sweep(1)
            if e["kind"] != "cell_scheduled"
        ]
        assert any(
            "ran without being scheduled" in p
            for p in validate_events(events)
        )

    def test_finished_counts_must_match(self):
        events = _minimal_sweep(2)
        events[-1]["ran"] = 7
        assert any(
            "finished counts" in p for p in validate_events(events)
        )

    def test_truncated_tail_needs_partial(self):
        events = _minimal_sweep(2)[:-2]  # lost fold + finished
        assert any(
            "no terminal event" in p for p in validate_events(events)
        )
        assert validate_events(events, partial=True) == []

    def test_crash_then_restart_segments_cleanly(self):
        """A killed sweep followed by a seq-0 restart is one valid log."""
        killed = _minimal_sweep(3)[:-4]  # died mid-execute
        resumed = _minimal_sweep(3, seq0=0)
        assert validate_events(killed + resumed) == []

    def test_second_sweep_of_same_engine_continues_seq(self):
        first = _minimal_sweep(1)
        second = _minimal_sweep(1, seq0=first[-1]["seq"] + 1)
        assert validate_events(first + second) == []

    def test_seq_jump_between_engines_flagged(self):
        first = _minimal_sweep(1)
        second = _minimal_sweep(1, seq0=first[-1]["seq"] + 10)
        assert any(
            "neither continues" in p
            for p in validate_events(first + second)
        )


class TestLogIo:
    def test_truncated_final_line_tolerated(self, tmp_path):
        log = tmp_path / "events.jsonl"
        lines = [_dump(e) for e in _minimal_sweep(1)]
        log.write_text("\n".join(lines) + '\n{"kind": "fini', "utf-8")
        records = read_event_log(log)
        assert len(records) == len(lines)
        assert validate_events(records) == []

    def test_corrupt_middle_line_raises(self, tmp_path):
        log = tmp_path / "events.jsonl"
        lines = [_dump(e) for e in _minimal_sweep(1)]
        lines.insert(2, "not json")
        log.write_text("\n".join(lines) + "\n", "utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_event_log(log)

    def test_cli_validates(self, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        log.write_text(
            "\n".join(_dump(e) for e in _minimal_sweep(2)) + "\n", "utf-8"
        )
        assert events_main([str(log)]) == 0
        broken = tmp_path / "broken.jsonl"
        broken.write_text(
            "\n".join(_dump(e) for e in _minimal_sweep(2)[1:]) + "\n",
            "utf-8",
        )
        assert events_main([str(broken)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_normalize_strips_noise_only(self):
        records = [{
            "kind": "cell_finished", "seq": 0, "index": 0, "total": 1,
            "label": "c", "outcome": "ran", "seconds": 1.23,
            "key": "abc123", "stage": "s",
        }]
        [normalised] = normalize_events(records)
        assert normalised["seconds"] == 0.0
        assert normalised["key"] == "<key>"
        assert normalised["label"] == "c"
        assert list(normalised) == list(records[0])  # order kept
