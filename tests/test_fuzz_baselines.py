"""Every baseline policy survives a generated-scenario corpus.

The satellite smoke of ISSUE 6: 50 generated scenarios — ten per
policy, fixed seeds — run to completion with the full invariant
library clean.  A policy that corrupts scheduler structure, loses IO
events or starves a vCPU under churn fails here with the offending
seed in the assertion message.
"""

import pytest

from repro.fuzz import run_campaign
from repro.fuzz.scenario import POLICY_NAMES

CASES_PER_POLICY = 10
assert CASES_PER_POLICY * len(POLICY_NAMES) == 50


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_policy_survives_generated_corpus(policy):
    campaign = run_campaign(
        CASES_PER_POLICY,
        seed=1_000 * (POLICY_NAMES.index(policy) + 1),
        policies=(policy,),
        shrink_failures=False,
    )
    failing = {
        case.seed: sorted(str(v) for v in case.violations)
        for case in campaign.failures
    }
    assert not failing, f"{policy} violated invariants: {failing}"
    # the corpus actually exercised this policy's decision surface
    assert campaign.coverage.counts[f"policy:{policy}"] == CASES_PER_POLICY
