"""Churn timelines through the sweep engine: keys and equivalence.

Timelines are part of the cell's cache key: two stories differing in a
*single* event's time or kind must hash to different keys, otherwise
the result cache would replay the wrong simulation.  And churn cells,
like every other cell, must be serial/parallel/cache equivalent.
"""

from dataclasses import replace as dc_replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    ChurnTimeline,
    PcpuOffline,
    PcpuOnline,
    random_timeline,
)
from repro.exec import Cell, ResultCache, SweepRunner
from repro.experiments.churn import (
    BASE,
    ChurnStory,
    PhaseChange,
    VmBoot,
    VmShutdown,
    run_churn_cell,
)
from repro.sim.units import MS

SALT = "test-salt"


def _timeline(seed: int) -> ChurnTimeline:
    return random_timeline(
        seed=seed,
        n_events=5,
        base_vms=tuple((member.name, member.mode) for member in BASE),
        pcpus=2,
        start_ns=200 * MS,
        spacing_ns=200 * MS,
    )


def _key(timeline: ChurnTimeline) -> str:
    story = ChurnStory("keyed", BASE, timeline)
    cell = Cell(
        run_churn_cell,
        dict(
            story=story,
            policy_name="xen",
            warmup_ns=100 * MS,
            measure_ns=timeline.duration_ns + 100 * MS,
            seed=1,
        ),
    )
    return cell.cache_key(SALT)


class TestTimelineCacheKeys:
    def test_equal_timelines_share_a_key(self):
        assert _key(_timeline(3)) == _key(_timeline(3))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        index=st.integers(min_value=0, max_value=4),
        bump=st.integers(min_value=1, max_value=10 * MS),
    )
    def test_one_event_time_shift_changes_key(self, seed, index, bump):
        timeline = _timeline(seed)
        events = list(timeline.events)
        index %= len(events)
        events[index] = dc_replace(
            events[index], at_ns=events[index].at_ns + bump
        )
        assert _key(timeline) != _key(ChurnTimeline(tuple(events)))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        index=st.integers(min_value=0, max_value=4),
    )
    def test_one_event_kind_swap_changes_key(self, seed, index):
        timeline = _timeline(seed)
        events = list(timeline.events)
        index %= len(events)
        old = events[index]
        # same instant, different event class: only class identity in
        # the canonical form separates the keys
        substitute = (
            PcpuOffline(old.at_ns, cpu_id=0)
            if not isinstance(old, PcpuOffline)
            else PcpuOnline(old.at_ns, cpu_id=0)
        )
        events[index] = substitute
        assert _key(timeline) != _key(ChurnTimeline(tuple(events)))

    def test_same_fields_different_kind_distinct(self):
        # VmBoot/VmShutdown/PhaseChange share (at_ns, name[, mode])
        boot = ChurnTimeline((VmBoot(200 * MS, name="cpu0", mode="io"),))
        down = ChurnTimeline((VmShutdown(200 * MS, name="cpu0"),))
        phase = ChurnTimeline((PhaseChange(200 * MS, name="cpu0", mode="io"),))
        keys = {_key(boot), _key(down), _key(phase)}
        assert len(keys) == 3


def _equivalence_cells():
    stories = (
        ChurnStory(
            "mini-arrive",
            BASE,
            ChurnTimeline(
                (
                    VmBoot(200 * MS, name="dyn0", mode="io"),
                    VmShutdown(400 * MS, name="mem0"),
                )
            ),
        ),
        ChurnStory(
            "mini-phase",
            BASE,
            ChurnTimeline((PhaseChange(200 * MS, name="cpu1", mode="io"),)),
        ),
    )
    cells = []
    for story in stories:
        for policy_name in ("xen", "aql"):
            cells.append(
                Cell(
                    run_churn_cell,
                    dict(
                        story=story,
                        policy_name=policy_name,
                        warmup_ns=200 * MS,
                        measure_ns=story.timeline.duration_ns + 300 * MS,
                        seed=3,
                    ),
                    label=f"{story.name}:{policy_name}",
                )
            )
    return cells


class TestChurnCellEquivalence:
    def test_serial_parallel_identical(self):
        serial = SweepRunner(jobs=1).run(_equivalence_cells())
        parallel = SweepRunner(jobs=2).run(_equivalence_cells())
        assert len(serial) == len(parallel) == 4
        for ours, theirs in zip(serial, parallel):
            # ChurnRun is a plain dataclass: exact equality, floats and all
            assert ours == theirs

    def test_cache_replay_identical(self, tmp_path):
        cold = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        first = cold.run(_equivalence_cells())
        assert cold.cache.stats.misses == 4
        warm = SweepRunner(jobs=1, cache=ResultCache(root=tmp_path))
        second = warm.run(_equivalence_cells())
        assert warm.cache.stats.hits == 4
        for ours, theirs in zip(first, second):
            assert ours == theirs
