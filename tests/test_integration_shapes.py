"""End-to-end shape tests: the paper's headline claims.

These run real (but shortened) simulations and assert the *qualitative*
results the reproduction targets (see DESIGN.md §4): who wins, in which
direction, by more than noise.
"""

import pytest

from repro.baselines import AqlPolicy, Microsliced, XenCredit
from repro.core.calibration import _build_calibration_machine
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import SCENARIOS
from repro.hardware.specs import i7_3770
from repro.sim.units import MS, SEC


def calibrate_cell(kind, quantum_ms, k=4, seed=3, warmup=500 * MS, measure=1500 * MS):
    machine, baseline, _ = _build_calibration_machine(
        kind, quantum_ms, k, i7_3770(), seed
    )
    machine.run(warmup)
    baseline.begin_measurement()
    machine.run(measure)
    machine.sync()
    return baseline.result().value


class TestFig2Shapes:
    def test_exclusive_io_is_quantum_agnostic(self):
        at_1 = calibrate_cell("io_exclusive", 1)
        at_90 = calibrate_cell("io_exclusive", 90)
        assert abs(at_1 - at_90) / at_1 < 0.10

    def test_heterogeneous_io_prefers_small_quantum(self):
        at_1 = calibrate_cell("io_hetero", 1)
        at_30 = calibrate_cell("io_hetero", 30)
        at_90 = calibrate_cell("io_hetero", 90)
        assert at_1 < 0.5 * at_30  # paper: ~62% better
        assert at_30 <= at_90 * 1.1

    def test_conspin_prefers_small_quantum(self):
        at_1 = calibrate_cell("conspin", 1)
        at_30 = calibrate_cell("conspin", 30)
        assert at_1 < at_30

    def test_llcf_prefers_large_quantum(self):
        at_1 = calibrate_cell("llcf", 1)
        at_30 = calibrate_cell("llcf", 30)
        at_90 = calibrate_cell("llcf", 90)
        assert at_1 > 1.3 * at_30
        assert at_90 < at_30

    def test_lolcf_is_quantum_agnostic(self):
        at_1 = calibrate_cell("lolcf", 1)
        at_90 = calibrate_cell("lolcf", 90)
        assert abs(at_1 - at_90) / min(at_1, at_90) < 0.25

    def test_llco_is_quantum_agnostic(self):
        at_1 = calibrate_cell("llco", 1)
        at_90 = calibrate_cell("llco", 90)
        assert abs(at_1 - at_90) / min(at_1, at_90) < 0.25


class TestScenarioS5:
    @pytest.fixture(scope="class")
    def s5_runs(self):
        scenario = SCENARIOS["S5"]
        kwargs = dict(warmup_ns=2 * SEC, measure_ns=3 * SEC, seed=1)
        return {
            "xen": run_scenario(scenario, XenCredit(), **kwargs),
            "aql": run_scenario(scenario, AqlPolicy(), **kwargs),
            "micro": run_scenario(scenario, Microsliced(), **kwargs),
        }

    def test_aql_beats_xen_on_io(self, s5_runs):
        n = (
            s5_runs["aql"].by_placement["specweb2009"]
            / s5_runs["xen"].by_placement["specweb2009"]
        )
        assert n < 0.8

    def test_aql_beats_xen_on_conspin(self, s5_runs):
        n = (
            s5_runs["aql"].by_placement["facesim"]
            / s5_runs["xen"].by_placement["facesim"]
        )
        assert n < 0.95

    def test_aql_beats_or_matches_xen_on_llcf(self, s5_runs):
        n = (
            s5_runs["aql"].by_placement["bzip2"]
            / s5_runs["xen"].by_placement["bzip2"]
        )
        assert n < 1.05

    def test_agnostic_types_unharmed(self, s5_runs):
        for key in ("libquantum", "hmmer"):
            n = (
                s5_runs["aql"].by_placement[key]
                / s5_runs["xen"].by_placement[key]
            )
            assert n < 1.20

    def test_microsliced_hurts_llcf_aql_does_not(self, s5_runs):
        xen = s5_runs["xen"].by_placement["bzip2"]
        micro = s5_runs["micro"].by_placement["bzip2"] / xen
        aql = s5_runs["aql"].by_placement["bzip2"] / xen
        assert aql < micro  # AQL protects the cache-friendly class

    def test_aql_detects_all_types(self, s5_runs):
        detected = {t.value for t in s5_runs["aql"].detected_types.values()}
        assert detected == {"IOInt", "ConSpin", "LLCF", "LLCO", "LoLCF"}

    def test_aql_pool_quanta(self, s5_runs):
        quanta = {q for _, q, p, v in s5_runs["aql"].pool_layout if v}
        assert 1 * MS in quanta  # IOInt/ConSpin cluster
        assert 90 * MS in quanta  # LLCF cluster
