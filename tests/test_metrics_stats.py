"""Tests for the machine statistics collector and series helpers."""

import pytest

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.metrics.stats import StatsCollector, percentile, series_summary
from repro.sim.units import MS, SEC


class TestPercentile:
    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="empty series"):
            percentile([], 50.0)

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([7.5], q) == 7.5

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0, 2.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], -0.1)

    def test_endpoints_and_median(self):
        data = [4.0, 1.0, 3.0, 2.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 4.0
        assert percentile(data, 50.0) == pytest.approx(2.5)

    def test_linear_interpolation(self):
        # 5 points, rank positions 0..4: p90 sits 0.6 between 4 and 5
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 90.0) == (
            pytest.approx(4.6)
        )

    def test_input_order_irrelevant(self):
        assert percentile([5.0, 1.0, 3.0], 50.0) == percentile(
            [1.0, 3.0, 5.0], 50.0
        )


class TestSeriesSummary:
    def test_empty_series_total_zeros(self):
        summary = series_summary([])
        assert summary["count"] == 0.0
        assert summary == {
            "count": 0.0, "min": 0.0, "mean": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_single_sample(self):
        summary = series_summary([3.0])
        assert summary["count"] == 1.0
        assert (
            summary["min"] == summary["mean"] == summary["max"]
            == summary["p50"] == summary["p99"] == 3.0
        )

    def test_known_distribution(self):
        summary = series_summary(float(i) for i in range(1, 101))
        assert summary["count"] == 100.0
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


def build(seed=0, hogs=2, pcpus=1):
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:pcpus], 30 * MS)
    for i in range(hogs):
        vm = machine.new_vm(f"vm{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        vm.guest.add_thread(GuestThread(f"t{i}", hog_body))
    return machine, pool


class TestStatsCollector:
    def test_shares_sum_to_pool_capacity(self):
        machine, _ = build(hogs=4, pcpus=2)
        collector = StatsCollector(machine)
        machine.run(200 * MS)
        collector.start()
        machine.run(1 * SEC)
        stats = collector.collect()
        assert sum(stats.cpu_share.values()) == pytest.approx(2.0, rel=0.02)

    def test_fair_hogs_have_fairness_near_one(self):
        machine, _ = build(hogs=4, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(200 * MS)
        collector.start()
        machine.run(2 * SEC)
        stats = collector.collect()
        assert stats.jain_fairness() > 0.98

    def test_pool_utilization_saturated(self):
        machine, pool = build(hogs=3, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(100 * MS)
        collector.start()
        machine.run(500 * MS)
        stats = collector.collect()
        assert stats.pool_utilization["p"] == pytest.approx(1.0, rel=0.02)

    def test_dispatch_and_instruction_counters(self):
        machine, _ = build(hogs=2, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(100 * MS)
        collector.start()
        machine.run(500 * MS)
        stats = collector.collect()
        assert stats.dispatches > 0
        assert stats.total_instructions > 0

    def test_empty_window_rejected(self):
        machine, _ = build()
        collector = StatsCollector(machine)
        machine.run(10 * MS)
        collector.start()
        with pytest.raises(RuntimeError):
            collector.collect()

    def test_idle_machine_zero_utilization(self):
        machine = Machine(seed=0)
        machine.new_vm("idle", 1)
        collector = StatsCollector(machine)
        machine.run(10 * MS)
        collector.start()
        machine.run(100 * MS)
        stats = collector.collect()
        assert stats.machine_utilization == pytest.approx(0.0, abs=1e-6)
