"""Tests for the machine statistics collector."""

import pytest

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.metrics.stats import StatsCollector
from repro.sim.units import MS, SEC


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


def build(seed=0, hogs=2, pcpus=1):
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:pcpus], 30 * MS)
    for i in range(hogs):
        vm = machine.new_vm(f"vm{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        vm.guest.add_thread(GuestThread(f"t{i}", hog_body))
    return machine, pool


class TestStatsCollector:
    def test_shares_sum_to_pool_capacity(self):
        machine, _ = build(hogs=4, pcpus=2)
        collector = StatsCollector(machine)
        machine.run(200 * MS)
        collector.start()
        machine.run(1 * SEC)
        stats = collector.collect()
        assert sum(stats.cpu_share.values()) == pytest.approx(2.0, rel=0.02)

    def test_fair_hogs_have_fairness_near_one(self):
        machine, _ = build(hogs=4, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(200 * MS)
        collector.start()
        machine.run(2 * SEC)
        stats = collector.collect()
        assert stats.jain_fairness() > 0.98

    def test_pool_utilization_saturated(self):
        machine, pool = build(hogs=3, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(100 * MS)
        collector.start()
        machine.run(500 * MS)
        stats = collector.collect()
        assert stats.pool_utilization["p"] == pytest.approx(1.0, rel=0.02)

    def test_dispatch_and_instruction_counters(self):
        machine, _ = build(hogs=2, pcpus=1)
        collector = StatsCollector(machine)
        machine.run(100 * MS)
        collector.start()
        machine.run(500 * MS)
        stats = collector.collect()
        assert stats.dispatches > 0
        assert stats.total_instructions > 0

    def test_empty_window_rejected(self):
        machine, _ = build()
        collector = StatsCollector(machine)
        machine.run(10 * MS)
        collector.start()
        with pytest.raises(RuntimeError):
            collector.collect()

    def test_idle_machine_zero_utilization(self):
        machine = Machine(seed=0)
        machine.new_vm("idle", 1)
        collector = StatsCollector(machine)
        machine.run(10 * MS)
        collector.start()
        machine.run(100 * MS)
        stats = collector.collect()
        assert stats.machine_utilization == pytest.approx(0.0, abs=1e-6)
