"""Dedicated tests for the CSV export module (repro.metrics.export)."""

import csv

import pytest

from repro.experiments.runner import ScenarioRun
from repro.metrics.export import (
    TELEMETRY_FIELDNAMES,
    telemetry_rows,
    write_csv,
)
from repro.workloads.base import PerfResult


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_header_is_union_of_keys_in_first_seen_order(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "c": 4}]
        path = write_csv(tmp_path / "out.csv", rows)
        parsed = _read(path)
        assert parsed[0] == ["a", "b", "c"]
        assert parsed[1] == ["1", "2", ""]
        assert parsed[2] == ["3", "", "4"]

    def test_empty_rows_without_fieldnames_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to export"):
            write_csv(tmp_path / "out.csv", [])

    def test_empty_rows_with_fieldnames_writes_header_only(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", [], fieldnames=("x", "y"))
        assert _read(path) == [["x", "y"]]

    def test_explicit_fieldnames_pin_column_order(self, tmp_path):
        path = write_csv(
            tmp_path / "out.csv", [{"b": 2, "a": 1}], fieldnames=("a", "b")
        )
        assert _read(path) == [["a", "b"], ["1", "2"]]

    def test_single_row_single_column(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", [{"only": 7}])
        assert _read(path) == [["only"], ["7"]]


class TestTelemetryRows:
    def _run(self, summary):
        run = ScenarioRun(scenario="S2", policy="aql")
        run.telemetry_summary = summary
        return run

    def test_rows_sorted_by_counter(self):
        run = self._run({"z": 1.0, "a{vcpu=web.0}": 2.0})
        rows = telemetry_rows(run)
        assert [row["counter"] for row in rows] == ["a{vcpu=web.0}", "z"]
        assert rows[0] == {
            "scenario": "S2", "policy": "aql",
            "counter": "a{vcpu=web.0}", "value": 2.0,
        }

    def test_uninstrumented_run_yields_no_rows_but_valid_csv(self, tmp_path):
        rows = telemetry_rows(self._run({}))
        assert rows == []
        path = write_csv(
            tmp_path / "tel.csv", rows, fieldnames=TELEMETRY_FIELDNAMES
        )
        assert _read(path) == [list(TELEMETRY_FIELDNAMES)]


class TestScenarioRowsRoundtrip:
    def test_details_flattened_with_prefix(self, tmp_path):
        run = ScenarioRun(scenario="S1", policy="xen")
        run.results["app"] = PerfResult(
            name="app", metric="runtime", value=1.5,
            details=(("window_ns", 100),),
        )
        from repro.metrics.export import scenario_rows

        rows = scenario_rows(run)
        assert rows[0]["detail_window_ns"] == 100
        parsed = _read(write_csv(tmp_path / "s.csv", rows))
        assert "detail_window_ns" in parsed[0]
