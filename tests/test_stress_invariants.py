"""Stress/fuzz tests: global scheduler invariants under random mixes.

These catch the class of bugs unit tests miss: vCPUs lost from run
queues, double-queued vCPUs, machines that silently stop making
progress after reconfigurations, CPU time appearing from nowhere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import AqlPolicy, Microsliced, VSlicer, VTurbo, XenCredit
from repro.core.aql import AqlScheduler
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import AppPlacement, Scenario
from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import VCpuState
from repro.sim.units import MS, SEC
from repro.workloads.suites import APP_CATALOG


def check_machine_invariants(machine: Machine) -> None:
    """Structural invariants that must hold at any quiescent point."""
    seen: dict[int, str] = {}
    for ctx in machine.contexts.values():
        if ctx.offline:
            # a failed pCPU runs nothing and queues nothing
            assert ctx.pcpu in machine.offline_pcpus
            assert ctx.current is None
            assert len(ctx.runq) == 0
            continue
        # each context's pool owns the pcpu
        assert ctx.pcpu in ctx.pool.pcpus
        if ctx.current is not None:
            vcpu = ctx.current
            assert vcpu.state == VCpuState.RUNNING
            assert vcpu.pcpu is ctx.pcpu
            # a vCPU on two pCPUs would show up twice here
            assert vcpu.vcpu_id not in seen
            seen[vcpu.vcpu_id] = "running"
        for vcpu in ctx.runq:
            assert vcpu.state == VCpuState.RUNNABLE
            assert vcpu.vcpu_id not in seen, "vCPU queued twice"
            seen[vcpu.vcpu_id] = "queued"
    for vcpu in machine.all_vcpus:
        if vcpu.vcpu_id not in seen:
            assert vcpu.state in (VCpuState.BLOCKED, VCpuState.RUNNABLE), (
                f"{vcpu!r} neither running, queued, blocked nor parked"
            )
    # every live vCPU belongs to exactly one pool (and agrees about it)
    for vcpu in machine.all_vcpus:
        owners = [pool for pool in machine.pools if vcpu in pool.vcpus]
        assert len(owners) == 1, f"{vcpu!r} owned by {len(owners)} pools"
        assert vcpu.pool is owners[0]
    # live pools still carry the quantum the last installed plan chose
    if machine.last_plan is not None:
        plan_quanta = {
            name: quantum for name, _, quantum, _ in machine.last_plan.entries
        }
        for pool in machine.pools:
            if pool.name in plan_quanta:
                assert pool.quantum_ns == plan_quanta[pool.name], pool.name
    # shut-down VMs are fully withdrawn: ports closed and drained,
    # vCPUs in no pool / queue / context, credits can't be charged
    for vm in machine.retired_vms:
        assert not vm.alive
        for port in vm.ports:
            assert port.closed
            assert not port.pending, f"{port.name}: events to a dead VM"
        for vcpu in vm.vcpus:
            assert vcpu.state == VCpuState.BLOCKED
            assert vcpu.pool is None
            assert vcpu not in machine._parked
            for pool in machine.pools:
                assert vcpu not in pool.vcpus, "retired vCPU still pooled"
            for ctx in machine.contexts.values():
                assert ctx.current is not vcpu
                assert vcpu not in ctx.runq, "retired vCPU still queued"
    # total CPU time handed out (including by since-retired VMs) cannot
    # exceed wall time x pCPUs
    total_run = sum(v.run_ns_total for v in machine.all_vcpus)
    total_run += sum(
        v.run_ns_total for vm in machine.retired_vms for v in vm.vcpus
    )
    capacity = machine.sim.now * len(machine.topology.pcpus)
    assert total_run <= capacity * (1 + 1e-6)


APP_CHOICES = [
    "specweb2009", "facesim", "bzip2", "libquantum", "hmmer", "astar",
    "fluidanimate", "mcf", "gobmk",
]


@settings(max_examples=8, deadline=None)
@given(
    mix=st.lists(
        st.tuples(
            st.sampled_from(APP_CHOICES),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=4,
    ),
    policy_index=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_random_scenarios_run_clean(mix, policy_index, seed):
    """Any colocation mix under any policy runs without losing vCPUs
    or manufacturing CPU time."""
    placements = []
    for index, (app, vcpus) in enumerate(mix):
        placements.append(
            AppPlacement(app, vcpus, label=f"{app}#{index}")
        )
    scenario = Scenario("fuzz", tuple(placements), pcpus=2)
    policies = [XenCredit(), Microsliced(), VSlicer(), VTurbo(), AqlPolicy()]
    policy = policies[policy_index]
    from repro.experiments.scenarios import build_scenario

    built = build_scenario(scenario, seed=seed)
    policy.setup(built.machine, built.ctx)
    built.machine.run(600 * MS)
    built.machine.sync()
    check_machine_invariants(built.machine)
    # every placement made progress
    for key, workload in built.workloads.items():
        vm_threads = getattr(workload, "threads", None) or getattr(
            workload, "workers", None
        )
        if vm_threads:
            assert any(t.instructions_retired > 0 for t in vm_threads), key


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    policy_index=st.integers(min_value=0, max_value=1),
)
def test_random_churn_keeps_invariants(seed, policy_index):
    """A random churn timeline (boots, teardowns, phase changes, faults)
    never corrupts scheduler structure under either policy."""
    from repro.dynamics import random_timeline
    from repro.experiments.churn import BASE, ChurnStory, _run_churn

    timeline = random_timeline(
        seed=seed,
        n_events=5,
        base_vms=tuple((member.name, member.mode) for member in BASE),
        pcpus=2,
        start_ns=200 * MS,
        spacing_ns=200 * MS,
    )
    story = ChurnStory("fuzz", BASE, timeline)
    policy_name = ("xen", "aql")[policy_index]
    run, machine = _run_churn(
        story,
        policy_name,
        warmup_ns=300 * MS,
        measure_ns=timeline.duration_ns + 400 * MS,
        seed=seed,
    )
    assert run.events_applied == len(timeline)
    check_machine_invariants(machine)
    # run on after the story: teardown must not have wedged anything
    machine.run(200 * MS)
    machine.sync()
    check_machine_invariants(machine)


class TestLongRunStability:
    def test_aql_long_run_conserves_structure(self):
        machine = Machine(seed=2)
        pool = machine.create_pool("p", machine.topology.pcpus[:4], 30 * MS)
        for i, name in enumerate(
            ("specweb2009", "bzip2", "libquantum", "hmmer")
        ):
            nv = 1
            vm = machine.new_vm(f"{name}", nv)
            machine.default_pool.remove_vcpu(vm.vcpus[0])
            pool.add_vcpu(vm.vcpus[0])
            from repro.workloads.suites import make_app

            make_app(name, machine.spec, vcpus=nv).install(machine, vm)
        AqlScheduler(machine, pcpus=pool.pcpus).attach()
        for _ in range(10):
            machine.run(500 * MS)
            machine.sync()
            check_machine_invariants(machine)

    def test_no_stuck_machine_after_many_migrations(self):
        """Force a reconfiguration every window and confirm forward
        progress throughout."""
        machine = Machine(seed=3)
        vms = []
        for i in range(6):
            vm = machine.new_vm(f"vm{i}", 1)
            t = GuestThread(f"t{i}", lambda th: iter_hog())
            vm.guest.add_thread(t)
            vms.append((vm, t))

        def iter_hog():
            while True:
                yield Compute(2_000_000)

        from repro.hypervisor.pools import PoolPlan

        machine.run(100 * MS)
        last = {vm.name: t.instructions_retired for vm, t in vms}
        pcpus = machine.topology.pcpus
        for round_index in range(12):
            split = (round_index % 7) + 1
            plan = PoolPlan()
            plan.add("a", pcpus[:split], (round_index % 3 + 1) * MS,
                     [vm.vcpus[0] for vm, _ in vms[:3]])
            plan.add("b", pcpus[split:], 90 * MS,
                     [vm.vcpus[0] for vm, _ in vms[3:]])
            machine.apply_pool_plan(plan)
            machine.run(100 * MS)
            machine.sync()
            check_machine_invariants(machine)
            if round_index % 3 == 2:
                # a 90 ms quantum with 3 vCPUs on one pCPU can starve a
                # vCPU for one 100 ms window; 300 ms covers a rotation
                for vm, t in vms:
                    assert t.instructions_retired > last[vm.name], vm.name
                    last[vm.name] = t.instructions_retired
