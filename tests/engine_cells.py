"""Cheap, pure sweep cells + the subprocess driver for crash tests.

The crash-consistency suite (``tests/test_exec_crash_resume.py``)
SIGKILLs a real process mid-sweep and resumes it, so it needs cells
that are:

* **module-level and picklable** — they cross the fork into workers
  and their identity feeds the content-addressed cache key;
* **pure in their arguments** — the whole point is byte-identical
  folds across interrupted/resumed/uninterrupted runs;
* **cheap** — the kill point is injected deterministically via
  ``REPRO_ENGINE_KILL_AFTER``, so the cells never need to be slow.

Functions are always resolved through the canonical module name
(``tests.engine_cells``), even when this file runs as ``__main__`` —
``Cell.cache_key`` embeds ``fn.__module__``, and the kill-run, the
resume-run and the in-process assertions must all plan identical keys.

Run as a script (``python -m tests.engine_cells --run-root DIR``) it
executes one engine sweep and prints the SHA-256 of the folded pickle;
with ``REPRO_ENGINE_KILL_AFTER=N`` in the environment the engine
SIGKILLs itself after the Nth journalled cell, which is exactly how
the tests (and the CI ``engine-smoke`` job) produce a crashed run.
"""

from __future__ import annotations

import argparse
import hashlib
import pickle
import sys
from pathlib import Path
from typing import Optional, Sequence


def arith_cell(n: int, knuth: int = 2654435761) -> dict[str, int]:
    """A deterministic toy computation (multiplicative hashing)."""
    value = (n * n * knuth + n) % 1000003
    return {"n": n, "value": value, "bits": value.bit_length()}


def interrupting_cell(n: int, interrupt_at: int) -> int:
    """Raises KeyboardInterrupt on one cell — the Ctrl-C regression."""
    if n == interrupt_at:
        raise KeyboardInterrupt
    return n * n


def suicide_cell(n: int, die_at: int) -> int:
    """SIGKILLs its own worker process on one cell — pool crash test."""
    if n == die_at:
        import os
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    return n * n


def slow_cell(n: int, spin_ms: int) -> int:
    """Sleeps before computing — keeps a sweep alive long enough for
    the ops-smoke CI job to poll the live HTTP endpoints.  Tests are
    outside the simlint domains, so the sleep needs no waiver."""
    import time

    time.sleep(spin_ms / 1000.0)
    return n * n


def make_cells(count: int, knuth: int = 2654435761) -> list:
    """``count`` arith cells with canonical (importable) identity."""
    from repro.exec import Cell

    from tests import engine_cells as canonical

    return [
        Cell(
            canonical.arith_cell,
            dict(n=n, knuth=knuth),
            label=f"arith:{n}",
        )
        for n in range(count)
    ]


def make_interrupting_cells(count: int, interrupt_at: int) -> list:
    from repro.exec import Cell

    from tests import engine_cells as canonical

    return [
        Cell(
            canonical.interrupting_cell,
            dict(n=n, interrupt_at=interrupt_at),
            label=f"intr:{n}",
        )
        for n in range(count)
    ]


def make_suicide_cells(count: int, die_at: int) -> list:
    from repro.exec import Cell

    from tests import engine_cells as canonical

    return [
        Cell(
            canonical.suicide_cell,
            dict(n=n, die_at=die_at),
            label=f"die:{n}",
        )
        for n in range(count)
    ]


def make_slow_cells(count: int, spin_ms: int) -> list:
    from repro.exec import Cell

    from tests import engine_cells as canonical

    return [
        Cell(
            canonical.slow_cell,
            dict(n=n, spin_ms=spin_ms),
            label=f"slow:{n}",
        )
        for n in range(count)
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.exec import Engine, WorkerCrash

    parser = argparse.ArgumentParser(
        prog="python -m tests.engine_cells",
        description="run one toy engine sweep (the crash-suite driver)",
    )
    parser.add_argument("--run-root", type=Path, default=None)
    parser.add_argument("--cells", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--stage", default="crash-suite")
    parser.add_argument(
        "--fold-out", type=Path, default=None,
        help="write the folded results pickle here (byte comparison)",
    )
    parser.add_argument(
        "--die-at", type=int, default=None, metavar="N",
        help="use suicide cells: cell N SIGKILLs its worker "
             "(flight-recorder leg of the crash suite)",
    )
    parser.add_argument(
        "--spin-ms", type=int, default=None, metavar="MS",
        help="use slow cells sleeping MS each (the ops-smoke CI job "
             "needs a sweep that outlives a few curl polls)",
    )
    parser.add_argument(
        "--serve", default=None, metavar="[HOST:]PORT",
        help="attach the ops plane and serve /metrics, /status and "
             "/events while the sweep runs",
    )
    args = parser.parse_args(argv)

    engine = Engine(jobs=args.jobs, run_root=args.run_root)
    plane = None
    if args.serve is not None or args.run_root is not None:
        from repro.ops import attach_ops, parse_serve_spec

        spec = parse_serve_spec(args.serve) if args.serve else None
        plane = attach_ops(engine, spec=spec)
        if plane.server is not None:
            print(f"[ops] serving at {plane.server.url}", file=sys.stderr)
        engine.expect_cells(args.cells)
    if args.die_at is not None:
        cells = make_suicide_cells(args.cells, args.die_at)
    elif args.spin_ms is not None:
        cells = make_slow_cells(args.cells, args.spin_ms)
    else:
        cells = make_cells(args.cells)
    try:
        results = engine.run(cells, stage=args.stage)
    except WorkerCrash as exc:
        # the Interrupted event already made the flight recorder dump;
        # report and exit with a distinct code the tests assert on
        print(f"[engine] worker crash: {exc}", file=sys.stderr)
        if plane is not None:
            plane.close()
        engine.close()
        return 3
    payload = pickle.dumps(results)
    if args.fold_out is not None:
        args.fold_out.write_bytes(payload)
    print(hashlib.sha256(payload).hexdigest())
    if plane is not None:
        plane.close()
    engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
