"""Whole-program pass contract.

Three layers: the fixture battery under ``analysis_fixtures/interproc``
(exact per-file findings, including the laundering case the per-module
rules cannot see), a Hypothesis property pinning that a suppressed
source never contributes taint at any chain depth, and unit checks for
the witness traces and the baseline ratchet.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Analyzer, Violation, WholeProgramAnalyzer
from repro.analysis.interproc.baseline import (
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)

INTERPROC_DIR = Path(__file__).parent / "analysis_fixtures" / "interproc"
_EXPECT_RE = re.compile(r"#\s*simlint-expect:\s*(.*)$")


def _expected_findings(path: Path) -> list[tuple[str, int]]:
    for line in path.read_text().splitlines()[:10]:
        match = _EXPECT_RE.search(line)
        if match:
            return sorted(
                (token.split(":")[0], int(token.split(":")[1]))
                for token in match.group(1).split()
            )
    raise AssertionError(f"{path.name} has no '# simlint-expect:' directive")


@pytest.fixture(scope="module")
def interproc_violations() -> list[Violation]:
    return WholeProgramAnalyzer().analyze_paths([INTERPROC_DIR])


# ----------------------------------------------------------------------
# fixture battery
# ----------------------------------------------------------------------
def test_interproc_fixture_findings_match(interproc_violations):
    found: dict[str, list[tuple[str, int]]] = {
        path.name: [] for path in INTERPROC_DIR.glob("*.py")
    }
    for violation in interproc_violations:
        found[Path(violation.path).name].append(
            (violation.rule_id, violation.line)
        )
    for path in sorted(INTERPROC_DIR.glob("*.py")):
        assert sorted(found[path.name]) == _expected_findings(path), path.name


def test_laundering_is_invisible_to_the_per_module_battery():
    """The acceptance case: SIM001 misses what SIM008 catches.

    ``sim008_flagged.py`` never touches ``time`` itself and the helper
    module is allowlisted, so the per-module battery finds nothing in
    either file — the whole-program pass (previous test) finds two.
    """
    analyzer = Analyzer()
    for name in ("sim008_flagged.py", "sim008_helpers.py"):
        assert analyzer.analyze_file(INTERPROC_DIR / name) == []


def test_live_machine_capture_is_flagged(interproc_violations):
    assert any(
        v.rule_id == "SIM009" and "Machine instance" in v.message
        for v in interproc_violations
    )


def test_sim008_findings_carry_witness_traces(interproc_violations):
    sim008 = [v for v in interproc_violations if v.rule_id == "SIM008"]
    assert sim008
    for violation in sim008:
        assert violation.trace, violation.message
        # the last hop names the concrete primitive
        assert "()" in violation.trace[-1]


# ----------------------------------------------------------------------
# the suppression property
# ----------------------------------------------------------------------
_SOURCES = {
    "wall-clock": ("import time", "time.time()"),
    "rng": ("import random", "random.random()"),
    "ordering": ("import os", "os.getenv('FAKE')"),
}


@given(
    depth=st.integers(min_value=0, max_value=3),
    kind=st.sampled_from(sorted(_SOURCES)),
    suppress=st.booleans(),
)
def test_suppressed_source_never_contributes_taint(
    depth: int, kind: str, suppress: bool
):
    """``# simlint: disable`` on the source line kills taint at the root:
    no chain of helpers, of any depth, re-surfaces it at a sink."""
    imports, call = _SOURCES[kind]
    comment = "  # simlint: disable=all" if suppress else ""
    helper_lines = [imports, "def f0():", f"    return {call}{comment}"]
    for i in range(1, depth + 1):
        helper_lines.extend([f"def f{i}():", f"    return f{i - 1}()"])
    sink_source = (
        f"from repro.perf.fake_chain import f{depth}\n"
        "def consume():\n"
        f"    return f{depth}()\n"
    )
    violations = WholeProgramAnalyzer().analyze_sources(
        [
            (
                Path("helper.py"),
                "\n".join(helper_lines) + "\n",
                "repro.perf.fake_chain",
            ),
            (Path("sink.py"), sink_source, "repro.sim.fake_sink"),
        ]
    )
    sim008 = [(v.path, v.line) for v in violations if v.rule_id == "SIM008"]
    if suppress:
        assert sim008 == []
    else:
        assert sim008 == [("sink.py", 3)]


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
def test_baseline_roundtrip_tolerates_everything_written(
    tmp_path, interproc_violations
):
    assert interproc_violations  # the fixtures guarantee findings
    path = tmp_path / "baseline.json"
    write_baseline(path, interproc_violations)
    tolerated = load_baseline(path)
    fresh, baselined = apply_baseline(interproc_violations, tolerated)
    assert fresh == []
    assert baselined == len(interproc_violations)


def test_new_finding_escapes_the_baseline(tmp_path, interproc_violations):
    path = tmp_path / "baseline.json"
    write_baseline(path, interproc_violations)
    tolerated = load_baseline(path)
    novel = Violation("SIM008", "brand_new.py", 1, 0, "a new finding")
    fresh, _ = apply_baseline([*interproc_violations, novel], tolerated)
    assert fresh == [novel]


def test_baseline_fingerprint_ignores_line_numbers():
    a = Violation("SIM002", "m.py", 3, 0, "unseeded rng")
    b = Violation("SIM002", "m.py", 90, 4, "unseeded rng")
    assert finding_fingerprint(a) == finding_fingerprint(b)


def test_baseline_count_semantics(tmp_path):
    a = Violation("SIM002", "m.py", 3, 0, "unseeded rng")
    b = Violation("SIM002", "m.py", 9, 0, "unseeded rng")  # same fingerprint
    path = tmp_path / "baseline.json"
    write_baseline(path, [a])  # one tolerated occurrence
    fresh, baselined = apply_baseline([a, b], load_baseline(path))
    assert baselined == 1
    assert fresh == [b]


def test_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"schema": 99, "findings": {}}')
    with pytest.raises(ValueError):
        load_baseline(path)
