"""Teardown edge cases for the machine lifecycle layer.

The nasty corners of churn: a VM dying with IO in flight, a pCPU
failing while a vCPU is mid-quantum on it, a pool losing its last VM,
and the recovery paths back.  Each scenario checks the structural
invariants from the stress suite afterwards, so a leak anywhere in the
teardown path fails loudly.
"""

import pytest

from repro.dynamics import SwitchableWorkload
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import VCpuState
from repro.sim.units import MS

from tests.test_stress_invariants import check_machine_invariants


def _machine(pcpus: int = 2, seed: int = 0) -> Machine:
    from dataclasses import replace

    from repro.hardware.specs import i7_3770

    spec = replace(i7_3770(), cores_per_socket=pcpus, sockets=1)
    return Machine(spec, seed=seed)


def _add_switchable(machine: Machine, name: str, mode: str):
    vm = machine.new_vm(name, 1)
    workload = SwitchableWorkload(name, mode=mode, clients=4)
    workload.install(machine, vm)
    return vm, workload


class TestVmShutdown:
    def test_shutdown_mid_io_burst_drops_pending(self):
        """Killing an IO VM with a full event queue must drop (and
        count) the backlog, not deliver to the corpse."""
        machine = _machine()
        vm, workload = _add_switchable(machine, "srv", "io")
        _add_switchable(machine, "bg", "llcf")
        machine.run(200 * MS)
        assert workload.completed > 0
        port = workload.port
        # a burst that the server cannot have served yet
        for _ in range(50):
            port.post((workload._generation, machine.sim.now))
        assert port.backlog > 0
        backlog = port.backlog
        machine.shutdown_vm(vm)
        assert port.closed
        assert port.backlog == 0
        # the drained backlog counts as discarded (accepted, never
        # served) — not as dropped (refused at the door)
        assert port.discarded >= backlog
        # in-flight completions arriving after death are refused
        dropped_before = port.dropped
        port.post((0, machine.sim.now))
        assert port.dropped == dropped_before + 1
        assert port.posted == port.consumed + port.backlog + port.discarded
        assert not vm.alive
        assert vm in machine.retired_vms and vm not in machine.vms
        # stale client timers fire harmlessly; the world keeps turning
        machine.run(300 * MS)
        machine.sync()
        check_machine_invariants(machine)

    def test_shutdown_running_vm_backfills_pcpu(self):
        machine = _machine()
        victims = [_add_switchable(machine, f"v{i}", "llcf") for i in range(3)]
        machine.run(100 * MS)
        running = [
            ctx.current for ctx in machine.contexts.values() if ctx.current
        ]
        assert running, "someone should be on a pCPU"
        target = running[0].vm
        workload = next(w for vm, w in victims if vm is target)
        machine.shutdown_vm(target)
        for vcpu in target.vcpus:
            assert vcpu.state == VCpuState.BLOCKED
            assert vcpu.pool is None
        machine.run(100 * MS)
        machine.sync()
        # the survivors keep making progress on the freed core
        for vm, w in victims:
            if vm is not target:
                assert w.units_done > 0
        check_machine_invariants(machine)

    def test_shutdown_twice_rejected(self):
        machine = _machine()
        vm, _ = _add_switchable(machine, "once", "llcf")
        machine.run(50 * MS)
        machine.shutdown_vm(vm)
        with pytest.raises(ValueError):
            machine.shutdown_vm(vm)

    def test_last_vm_shutdown_collapses_custom_pool(self):
        """A non-default pool whose last vCPU leaves gives its pCPUs
        back to the default pool."""
        machine = _machine(pcpus=2)
        vm, _ = _add_switchable(machine, "solo", "llcf")
        keeper, _ = _add_switchable(machine, "keeper", "llcf")
        pcpu = machine.topology.pcpus[1]
        pool = machine.create_pool("island", [pcpu], 5 * MS)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        machine.run(100 * MS)
        machine.shutdown_vm(vm)
        assert pool not in machine.pools
        assert pcpu in machine.default_pool.pcpus
        assert machine.contexts[pcpu].pool is machine.default_pool
        machine.run(100 * MS)
        machine.sync()
        check_machine_invariants(machine)


class TestPcpuFaults:
    def test_offline_mid_quantum_displaces_current(self):
        machine = _machine(pcpus=2)
        workloads = [
            _add_switchable(machine, f"w{i}", "llcf")[1] for i in range(4)
        ]
        machine.run(95 * MS)  # mid-quantum, mid-tick
        pcpu = machine.topology.pcpus[1]
        ctx = machine.contexts[pcpu]
        assert ctx.current is not None
        displaced = ctx.current
        machine.offline_pcpu(pcpu)
        assert pcpu in machine.offline_pcpus
        assert ctx.offline and ctx.current is None and len(ctx.runq) == 0
        assert displaced.state in (VCpuState.RUNNABLE, VCpuState.RUNNING)
        before = [w.units_done for w in workloads]
        machine.run(300 * MS)
        machine.sync()
        check_machine_invariants(machine)
        # all four VMs keep running on the surviving core
        for w, b in zip(workloads, before):
            assert w.units_done > b, w.name

    def test_offline_then_online_restores_capacity(self):
        machine = _machine(pcpus=2)
        workloads = [
            _add_switchable(machine, f"w{i}", "llcf")[1] for i in range(4)
        ]
        machine.run(100 * MS)
        pcpu = machine.topology.pcpus[0]
        machine.offline_pcpu(pcpu)
        machine.run(200 * MS)
        machine.online_pcpu(pcpu)
        assert pcpu not in machine.offline_pcpus
        assert not machine.contexts[pcpu].offline
        machine.run(200 * MS)
        machine.sync()
        check_machine_invariants(machine)
        # the revived core actually runs someone again
        assert machine.contexts[pcpu].pcpu in machine.contexts[pcpu].pool.pcpus
        busy = sum(
            1 for ctx in machine.contexts.values() if ctx.current is not None
        )
        assert busy == 2, "both cores should be busy under 2x overload"
        assert all(w.units_done > 0 for w in workloads)

    def test_cannot_offline_last_pcpu(self):
        machine = _machine(pcpus=2)
        _add_switchable(machine, "w", "llcf")
        machine.run(50 * MS)
        p0, p1 = machine.topology.pcpus
        machine.offline_pcpu(p0)
        with pytest.raises(ValueError):
            machine.offline_pcpu(p1)
        with pytest.raises(ValueError):
            machine.offline_pcpu(p0)  # already offline

    def test_offline_pool_with_vcpus_reabsorbs(self):
        """A single-pCPU pool losing its core hands its vCPUs to the
        least-loaded surviving pool and counts the migrations."""
        machine = _machine(pcpus=2)
        vm, _ = _add_switchable(machine, "islander", "llcf")
        _add_switchable(machine, "mainlander", "llcf")
        pcpu = machine.topology.pcpus[1]
        pool = machine.create_pool("island", [pcpu], 5 * MS)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        machine.run(100 * MS)
        migrations = machine.migrations_total
        machine.offline_pcpu(pcpu)
        assert pool not in machine.pools
        assert vm.vcpus[0].pool is machine.default_pool
        assert machine.migrations_total == migrations + 1
        machine.run(100 * MS)
        machine.sync()
        check_machine_invariants(machine)


class TestBootAfterStart:
    def test_boot_vm_mid_run_makes_progress(self):
        machine = _machine(pcpus=2)
        _add_switchable(machine, "old", "llcf")
        machine.run(100 * MS)
        vm, workload = _add_switchable(machine, "young", "io")
        machine.boot_vm(vm)
        machine.run(300 * MS)
        machine.sync()
        assert workload.completed > 0, "booted IO VM never served a request"
        check_machine_invariants(machine)
