"""Tests for the event-channel IO path."""

import pytest

from repro.guest.phases import Compute, WaitEvent
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.hypervisor.vm import VCpuState
from repro.sim.units import MS


def server_body(port, log):
    def body(thread):
        while True:
            wait = WaitEvent(port)
            yield wait
            log.append(wait.payload)
            yield Compute(10_000)

    return body


class TestDelivery:
    def test_event_unblocks_waiting_thread(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        log = []
        vm.guest.add_thread(GuestThread("s", server_body(port, log)))
        machine.run(10 * MS)
        assert vm.vcpus[0].state == VCpuState.BLOCKED
        port.post("hello")
        machine.run(10 * MS)
        assert log == ["hello"]

    def test_events_processed_in_order(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        log = []
        vm.guest.add_thread(GuestThread("s", server_body(port, log)))
        machine.run(10 * MS)
        for i in range(5):
            port.post(i)
        machine.run(10 * MS)
        assert log == [0, 1, 2, 3, 4]

    def test_backlog_and_counters(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        port.post("a")
        port.post("b")
        assert port.backlog == 2
        assert port.posted == 2
        assert vm.vcpus[0].io_events == 2.0
        ok, payload = port.try_consume()
        assert ok and payload == "a"
        assert port.consumed == 1
        assert port.backlog == 1

    def test_empty_consume(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        ok, payload = port.try_consume()
        assert not ok and payload is None

    def test_event_before_thread_waits_is_not_lost(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        log = []
        port.post("early")
        vm.guest.add_thread(GuestThread("s", server_body(port, log)))
        machine.run(10 * MS)
        assert log == ["early"]


class TestGuestInterrupt:
    def test_event_preempts_cpu_thread_on_same_vcpu(self):
        """The guest-interrupt path: an event for a blocked handler
        displaces the running compute thread immediately."""
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        log = []
        vm.guest.add_thread(GuestThread("s", server_body(port, log)))

        def hog(thread):
            while True:
                yield Compute(10_000_000)

        vm.guest.add_thread(GuestThread("cgi", hog))
        machine.run(50 * MS)
        post_time = machine.sim.now
        port.post(post_time)
        machine.run(1 * MS)
        assert log == [post_time]  # handled within ~the service time

    def test_interrupt_does_not_displace_spinner(self):
        from repro.guest.phases import Acquire
        from repro.guest.spinlock import SpinLock
        from repro.guest.thread import ThreadState

        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        port = machine.new_port(vm.vcpus[0], "p")
        log = []
        lock = SpinLock("l")
        lock_holder = GuestThread("ghost", lambda t: iter(()))
        lock.try_acquire(lock_holder, now=0)  # never released

        def spinner(thread):
            yield Acquire(lock)

        vm.guest.add_thread(GuestThread("s", server_body(port, log)))
        spin_thread = GuestThread("spin", spinner)
        vm.guest.add_thread(spin_thread)
        machine.run(5 * MS)
        # the server waits; the spinner holds the vCPU spinning
        assert spin_thread.state == ThreadState.SPINNING
        port.post("x")
        machine.run(5 * MS)
        # interrupt must not displace the spinning thread
        assert spin_thread.state == ThreadState.SPINNING
        assert log == []
