"""Tests for scenario building and the experiment runner."""

import pytest

from repro.baselines import XenCredit
from repro.core.types import VCpuType
from repro.experiments.runner import _placement_key, run_scenario
from repro.experiments.scenarios import (
    FIG3_POPULATION,
    SCENARIOS,
    AppPlacement,
    Scenario,
    build_scenario,
)
from repro.sim.units import MS, SEC


class TestScenarioDefinitions:
    @pytest.mark.parametrize("name", ["S1", "S2", "S3", "S4", "S5"])
    def test_table4_scenarios_are_16_on_4(self, name):
        scenario = SCENARIOS[name]
        assert scenario.total_vcpus == 16
        assert scenario.pcpus == 4

    def test_fig3_population_counts(self):
        assert FIG3_POPULATION.total_vcpus == 48
        assert FIG3_POPULATION.pcpus == 12
        assert FIG3_POPULATION.reserved_sockets == 1

    def test_machine_spec_sizing(self):
        spec = SCENARIOS["S1"].machine_spec()
        assert spec.sockets == 1 and spec.cores_per_socket == 4
        multi = FIG3_POPULATION.machine_spec()
        assert multi.sockets == 4 and multi.cores_per_socket == 4


class TestBuildScenario:
    def test_s5_structure(self):
        built = build_scenario(SCENARIOS["S5"], seed=0)
        assert len(built.ctx.oracle_types) == 16
        type_counts = {}
        for vtype in built.ctx.oracle_types.values():
            type_counts[vtype] = type_counts.get(vtype, 0) + 1
        assert type_counts == {
            VCpuType.IOINT: 4,
            VCpuType.CONSPIN: 4,
            VCpuType.LLCF: 4,
            VCpuType.LLCO: 2,
            VCpuType.LOLCF: 2,
        }
        # CPU placements become one VM per unit; IO/spin one multi-vCPU VM
        names = {vm.name for vm in built.machine.vms}
        assert "specweb2009" in names and "facesim" in names
        assert "bzip2.0" in names and "bzip2.3" in names

    def test_all_vcpus_in_scenario_pool(self):
        built = build_scenario(SCENARIOS["S1"], seed=0)
        pool = built.ctx.pool
        assert pool is not None
        assert len(pool.vcpus) == 16
        assert len(pool.pcpus) == 4

    def test_multi_socket_reserved_socket_left_out(self):
        built = build_scenario(FIG3_POPULATION, seed=0)
        assert built.ctx.sockets is not None
        assert len(built.ctx.sockets) == 3
        reserved = built.machine.topology.sockets[0]
        pool = built.ctx.pool
        assert all(p not in pool.pcpus for p in reserved.pcpus)

    def test_equal_per_vcpu_weight(self):
        built = build_scenario(SCENARIOS["S4"], seed=0)
        weights = {
            vm.weight / len(vm.vcpus) for vm in built.machine.vms
        }
        assert weights == {256.0}

    def test_trashing_io_flag(self):
        built = build_scenario(FIG3_POPULATION, seed=0)
        io_workload = built.workloads["IOInt+"]
        assert io_workload.cgi_profile.wss_bytes > built.machine.spec.llc.capacity_bytes


class TestRunner:
    def test_placement_key_folding(self):
        assert _placement_key("bzip2.3") == "bzip2"
        assert _placement_key("specweb2009") == "specweb2009"
        assert _placement_key("a.b.2") == "a.b"

    def test_run_scenario_produces_all_results(self):
        run = run_scenario(
            SCENARIOS["S3"],
            XenCredit(),
            warmup_ns=300 * MS,
            measure_ns=600 * MS,
            seed=0,
        )
        assert set(run.by_placement) == {"bzip2", "libquantum", "hmmer"}
        assert len(run.results) == 16  # one per unit VM
        assert all(v > 0 for v in run.by_placement.values())
        assert run.pool_layout  # layout recorded

    def test_keep_built(self):
        run = run_scenario(
            SCENARIOS["S3"],
            XenCredit(),
            warmup_ns=100 * MS,
            measure_ns=200 * MS,
            seed=0,
            keep_built=True,
        )
        assert run.built is not None
        assert run.built.machine.sim.now == 300 * MS


class TestCustomScenario:
    def test_small_custom_scenario(self):
        scenario = Scenario(
            "tiny",
            (
                AppPlacement("hmmer", 2),
                AppPlacement("libquantum", 2),
            ),
            pcpus=2,
        )
        run = run_scenario(
            scenario, XenCredit(), warmup_ns=200 * MS, measure_ns=400 * MS
        )
        assert set(run.by_placement) == {"hmmer", "libquantum"}

    def test_oversized_scenario_rejected(self):
        scenario = Scenario(
            "bad", (AppPlacement("hmmer", 2),), pcpus=64
        )
        with pytest.raises(ValueError):
            build_scenario(scenario, spec=SCENARIOS["S1"].machine_spec())
