"""Tests for the workload layer: CPU burn, IO services, spin workers."""

import pytest

from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.base import PerfResult
from repro.workloads.cpu import CpuBurnWorkload
from repro.workloads.io_workload import IoWorkload
from repro.workloads.profiles import (
    llcf_profile,
    llco_profile,
    lolcf_profile,
)
from repro.workloads.spin import SpinWorkload


def machine_with_pool(pcpus=1, seed=0):
    machine = Machine(seed=seed)
    pool = machine.create_pool("p", machine.topology.pcpus[:pcpus], 30 * MS)

    def place(vm):
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)

    return machine, place


class TestProfiles:
    def test_llcf_fits_llc(self):
        spec = Machine(seed=0).spec
        profile = llcf_profile(spec, 0.5)
        assert profile.wss_bytes == spec.llc.capacity_bytes // 2

    def test_llco_overflows_llc(self):
        spec = Machine(seed=0).spec
        assert llco_profile(spec).wss_bytes > spec.llc.capacity_bytes

    def test_lolcf_fits_l2(self):
        spec = Machine(seed=0).spec
        assert lolcf_profile(spec).wss_bytes <= spec.l2.capacity_bytes

    def test_validation(self):
        spec = Machine(seed=0).spec
        with pytest.raises(ValueError):
            llcf_profile(spec, 0.0)
        with pytest.raises(ValueError):
            llco_profile(spec, 0.5)
        with pytest.raises(ValueError):
            lolcf_profile(spec, 1.5)


class TestCpuBurn:
    def test_measures_inverse_throughput(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = CpuBurnWorkload("w", lolcf_profile(machine.spec))
        workload.install(machine, vm)
        machine.run(200 * MS)
        workload.begin_measurement()
        machine.run(500 * MS)
        machine.sync()
        result = workload.result()
        assert result.metric == "ns_per_instr"
        # LoLCF alone: ~base CPI + small stall
        assert 0.2 < result.value < 0.6

    def test_result_before_measurement_raises(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = CpuBurnWorkload("w", lolcf_profile(machine.spec))
        workload.install(machine, vm)
        with pytest.raises(RuntimeError):
            workload.result()

    def test_double_install_rejected(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = CpuBurnWorkload("w", lolcf_profile(machine.spec))
        workload.install(machine, vm)
        with pytest.raises(RuntimeError):
            workload.install(machine, vm)

    def test_too_few_vcpus_rejected(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = CpuBurnWorkload("w", lolcf_profile(machine.spec), vcpus=2)
        with pytest.raises(ValueError):
            workload.install(machine, vm)

    def test_multi_vcpu_counts_all_threads(self):
        machine, place = machine_with_pool(pcpus=2)
        vm = machine.new_vm("vm", 2, weight=512)
        place(vm)
        workload = CpuBurnWorkload("w", lolcf_profile(machine.spec), vcpus=2)
        workload.install(machine, vm)
        machine.run(100 * MS)
        machine.sync()
        assert len(workload.threads) == 2
        assert all(t.instructions_retired > 0 for t in workload.threads)


class TestIoWorkload:
    def test_exclusive_low_latency_alone(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = IoWorkload.exclusive("io")
        workload.install(machine, vm)
        machine.run(300 * MS)
        workload.begin_measurement()
        machine.run(500 * MS)
        result = workload.result()
        assert result.metric == "latency_ns"
        assert result.value < 1 * MS

    def test_closed_loop_population_is_stable(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = IoWorkload("io", clients=4, think_ns=2 * MS,
                              service_instructions=10_000)
        workload.install(machine, vm)
        machine.run(1 * SEC)
        port = workload.ports[0]
        # in-flight = posted - consumed <= population
        assert port.posted - port.consumed <= 4

    def test_heterogeneous_has_cgi_threads(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = IoWorkload.heterogeneous("io", machine.spec)
        workload.install(machine, vm)
        assert len(workload.cgi_threads) == 1
        machine.run(300 * MS)
        machine.sync()
        assert workload.cgi_threads[0].instructions_retired > 0

    def test_multi_vcpu_service(self):
        machine, place = machine_with_pool(pcpus=2)
        vm = machine.new_vm("vm", 2, weight=512)
        place(vm)
        workload = IoWorkload.exclusive("io", vcpus=2)
        workload.install(machine, vm)
        machine.run(300 * MS)
        assert len(workload.ports) == 2
        assert all(p.posted > 0 for p in workload.ports)

    def test_no_requests_in_window_raises(self):
        machine, place = machine_with_pool()
        vm = machine.new_vm("vm", 1)
        place(vm)
        workload = IoWorkload("io", clients=1, think_ns=10 * SEC)
        workload.install(machine, vm)
        machine.run(10 * MS)
        workload.begin_measurement()
        with pytest.raises(RuntimeError):
            workload.result()

    def test_validation(self):
        with pytest.raises(ValueError):
            IoWorkload("io", clients=0)
        with pytest.raises(ValueError):
            IoWorkload("io", vcpus=0)
        with pytest.raises(ValueError):
            IoWorkload("io", think_ns=-1)


class TestSpinWorkload:
    def test_rounds_complete(self):
        machine, place = machine_with_pool(pcpus=2)
        vm = machine.new_vm("vm", 4, weight=1024)
        place(vm)
        workload = SpinWorkload("s", threads=4)
        workload.install(machine, vm)
        machine.run(500 * MS)
        workload.begin_measurement()
        machine.run(1 * SEC)
        result = workload.result()
        assert result.metric == "ns_per_round"
        assert dict(result.details)["rounds"] > 0

    def test_dense_mode_counts_loop_rounds(self):
        machine, place = machine_with_pool(pcpus=2)
        vm = machine.new_vm("vm", 2, weight=512)
        place(vm)
        workload = SpinWorkload(
            "s", threads=2, work_instructions=100_000.0, use_barrier=False
        )
        workload.install(machine, vm)
        machine.run(300 * MS)
        assert workload.rounds_completed > 0
        assert workload.barrier.rounds_completed == 0

    def test_lock_stats_populated(self):
        machine, place = machine_with_pool(pcpus=1)
        vm = machine.new_vm("vm", 2, weight=512)
        place(vm)
        workload = SpinWorkload("s", threads=2, work_instructions=500_000.0)
        workload.install(machine, vm)
        machine.run(1 * SEC)
        assert workload.lock.stats.acquisitions > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinWorkload("s", threads=0)
        with pytest.raises(ValueError):
            SpinWorkload("s", work_instructions=0)
        with pytest.raises(ValueError):
            SpinWorkload("s", sleep_ns=-1)


class TestPerfResult:
    def test_normalized_to(self):
        a = PerfResult("a", "latency_ns", 2.0)
        b = PerfResult("b", "latency_ns", 4.0)
        assert b.normalized_to(a) == 2.0

    def test_zero_baseline_rejected(self):
        a = PerfResult("a", "latency_ns", 0.0)
        b = PerfResult("b", "latency_ns", 4.0)
        with pytest.raises(ValueError):
            b.normalized_to(a)
