"""Unit tests for the random-mix generator (no simulation)."""

import numpy as np
import pytest

from repro.core.types import VCpuType
from repro.experiments.random_mixes import _CLASS_APPS, draw_mix
from repro.experiments.scenarios import build_scenario


class TestDrawMix:
    def test_fills_exactly_the_slot_budget(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            scenario = draw_mix(rng, total_vcpus=16)
            assert scenario.total_vcpus == 16

    def test_deterministic_for_a_given_stream(self):
        a = draw_mix(np.random.default_rng(7))
        b = draw_mix(np.random.default_rng(7))
        assert [p.key for p in a.placements] == [p.key for p in b.placements]

    def test_at_most_one_llco_block(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            scenario = draw_mix(rng)
            llco = [
                p
                for p in scenario.placements
                if p.expected_type == VCpuType.LLCO
            ]
            assert len(llco) <= 1

    def test_multithreaded_classes_get_blocks(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            scenario = draw_mix(rng)
            for placement in scenario.placements:
                if placement.expected_type in (
                    VCpuType.IOINT,
                    VCpuType.CONSPIN,
                ):
                    assert placement.vcpus >= 2

    def test_all_apps_exist_in_catalog(self):
        from repro.workloads.suites import APP_CATALOG

        for apps in _CLASS_APPS.values():
            for app in apps:
                assert app in APP_CATALOG

    def test_drawn_scenarios_are_buildable(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            scenario = draw_mix(rng)
            built = build_scenario(scenario, seed=0)
            assert len(built.ctx.oracle_types) == 16
