"""Tests for the phase-shifting workload and AQL's adaptation to it."""

import pytest

from repro.core.aql import AqlScheduler
from repro.core.types import VCpuType
from repro.core.vtrs import VTRS
from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.phased import PHASE_KINDS, BehaviourPhase, PhasedWorkload


class TestBehaviourPhase:
    def test_valid_kinds(self):
        for kind in PHASE_KINDS:
            BehaviourPhase(kind, 100 * MS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BehaviourPhase("quantum-leap", 100 * MS)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            BehaviourPhase("llcf", 0)


class TestPhasedWorkload:
    def _machine(self):
        machine = Machine(seed=3)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 30 * MS)
        vm = machine.new_vm("vm", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        return machine, vm

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedWorkload("p", phases=[])

    def test_cycles_complete(self):
        machine, vm = self._machine()
        workload = PhasedWorkload(
            "p",
            phases=[
                BehaviourPhase("lolcf", 50 * MS),
                BehaviourPhase("io", 50 * MS),
            ],
        )
        workload.install(machine, vm)
        machine.run(200 * MS)
        workload.begin_measurement()
        machine.run(600 * MS)
        result = workload.result()
        assert result.metric == "ns_per_cycle"
        assert dict(result.details)["cycles"] >= 2

    def test_vtrs_follows_the_phases(self):
        machine, vm = self._machine()
        workload = PhasedWorkload(
            "p",
            phases=[
                BehaviourPhase("llco", 600 * MS),
                BehaviourPhase("io", 600 * MS),
            ],
        )
        workload.install(machine, vm)
        vtrs = VTRS(machine).attach()
        observed = set()
        for _ in range(24):
            machine.run(100 * MS)
            verdict = vtrs.type_of(vm.vcpus[0])
            if verdict is not None:
                observed.add(verdict)
        assert VCpuType.LLCO in observed
        assert VCpuType.IOINT in observed

    def test_aql_recluster_on_phase_change(self):
        """A phase-shifting vCPU forces periodic re-clustering."""
        machine = Machine(seed=3)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        from repro.guest.thread import GuestThread
        from repro.guest.phases import Compute
        from repro.workloads.profiles import llcf_profile

        # a steady LLCF companion so there are two distinct clusters
        steady_vm = machine.new_vm("steady", 1)
        machine.default_pool.remove_vcpu(steady_vm.vcpus[0])
        pool.add_vcpu(steady_vm.vcpus[0])

        def steady(thread):
            while True:
                yield Compute(5_000_000, profile=llcf_profile(machine.spec))

        steady_vm.guest.add_thread(GuestThread("s", steady))

        phased_vm = machine.new_vm("phased", 1)
        machine.default_pool.remove_vcpu(phased_vm.vcpus[0])
        pool.add_vcpu(phased_vm.vcpus[0])
        workload = PhasedWorkload(
            "p",
            phases=[
                BehaviourPhase("io", 500 * MS),
                BehaviourPhase("llcf", 500 * MS),
            ],
        )
        workload.install(machine, phased_vm)
        manager = AqlScheduler(machine, pcpus=pool.pcpus).attach()
        machine.run(4 * SEC)
        # the layout must have changed more than once: IO phases pull
        # the vCPU into a 1 ms pool, compute phases out of it
        assert manager.reconfigurations >= 3
