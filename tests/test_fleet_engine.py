"""Fleet engine: serial ≡ sharded byte-identity plus state invariants.

The headline pin: a 4-host x 12-VM fleet run over 2 epochs produces a
bit-identical :class:`~repro.fleet.metrics.FleetRun` whether the host
cells execute in-process or across a 4-worker pool (explicit ``jobs``
and the ``REPRO_JOBS`` env path both).
"""

from fractions import Fraction

import pytest

from repro.exec import SweepRunner, fingerprint
from repro.exec.progress import CellReport
from repro.fleet import (
    DiurnalStory,
    FleetSimulation,
    FleetSpec,
    make_placer,
)
from repro.sim.units import MS

#: steady three-quarter load on a 16-slot fleet -> 12 resident VMs
MINI_STORY = DiurnalStory(
    "mini",
    shape=(0.75, 0.75),
    flavor_mix=(
        ("web", 0.3),
        ("batch", 0.3),
        ("stream", 0.2),
        ("lock", 0.2),
    ),
    churn=0.1,
    phase_rate=0.1,
)

#: 4 hosts x 4 slots = 16 slots; short epochs keep the test quick
MINI_SPEC = FleetSpec(
    hosts=4,
    host_class="medium",
    vcpu_ratio=1,
    epochs=2,
    warmup_ns=40 * MS,
    epoch_ns=120 * MS,
    migration_lag_ns=20 * MS,
    migration_budget=4,
)


def _run(placer="aql_aware", runner=None, seed=5):
    simulation = FleetSimulation(
        MINI_SPEC,
        MINI_STORY,
        make_placer(placer),
        seed=seed,
        runner=runner or SweepRunner(jobs=1),
    )
    return simulation, simulation.run()


class TestSerialShardedEquivalence:
    def test_explicit_jobs(self):
        """4 hosts x 12 VMs, 2 epochs: jobs=1 and jobs=4 bit-identical."""
        _, serial = _run(runner=SweepRunner(jobs=1))
        _, sharded = _run(runner=SweepRunner(jobs=4))
        assert serial.peak_vms == 12
        assert fingerprint(serial) == fingerprint(sharded)

    def test_env_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        _, serial = _run(runner=SweepRunner())
        monkeypatch.setenv("REPRO_JOBS", "4")
        _, sharded = _run(runner=SweepRunner())
        assert fingerprint(serial) == fingerprint(sharded)

    def test_same_seed_reruns_identically(self):
        _, first = _run()
        _, second = _run()
        assert fingerprint(first) == fingerprint(second)

    def test_seed_matters(self):
        _, first = _run(seed=5)
        _, second = _run(seed=6)
        assert fingerprint(first) != fingerprint(second)


class TestRunShape:
    @pytest.fixture(scope="class")
    def outcome(self):
        return _run(placer="first_fit")

    def test_epoch_metrics(self, outcome):
        _, run = outcome
        assert run.story == "mini"
        assert run.placer == "first_fit"
        assert run.hosts == 4
        assert len(run.epochs) == MINI_SPEC.epochs
        assert [m.epoch for m in run.epochs] == [0, 1]
        for metrics in run.epochs:
            assert metrics.vms == 12
            assert 1 <= metrics.active_hosts <= 4
            assert 0.0 <= metrics.mean_util <= 1.0
            assert metrics.util_spread >= 0.0
            assert metrics.units > 0
        assert run.epochs[0].arrivals == 12

    def test_fold_consistency(self, outcome):
        _, run = outcome
        assert run.peak_vms == max(m.vms for m in run.epochs)
        assert run.units == sum(m.units for m in run.epochs)
        assert run.total_migrations == sum(m.migrations for m in run.epochs)
        vm_epochs = sum(m.vms for m in run.epochs)
        expected_churn = float(Fraction(run.total_migrations, vm_epochs))
        assert run.migration_churn == pytest.approx(expected_churn)

    def test_steady_state_matches_traffic_target(self, outcome):
        simulation, _ = outcome
        population = sum(
            len(simulation.residents[h]) for h in simulation.host_ids
        )
        assert population == 12
        # every resident sits on a host with capacity to hold it
        for host_id in simulation.host_ids:
            residents = simulation.residents[host_id]
            assert len(residents) <= MINI_SPEC.slots_per_host
        # detection fed back: at least some VMs have a classified type
        assert set(simulation.detected) <= {
            name
            for host_id in simulation.host_ids
            for name in simulation.residents[host_id]
        }


class TestStagedProgress:
    def test_cells_report_with_epoch_stage(self):
        reports: list[CellReport] = []
        runner = SweepRunner(jobs=1, progress=reports.append)
        _run(runner=runner)
        assert reports, "no progress reports seen"
        stages = {report.stage for report in reports}
        assert "mini:aql_aware epoch 1/2" in stages
        assert "mini:aql_aware epoch 2/2" in stages
        assert all(report.label.startswith("fleet:mini:") for report in reports)
