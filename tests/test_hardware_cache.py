"""Tests for the shared-LLC model: occupancy accounting + integration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import (
    MemoryProfile,
    SharedCache,
    estimate_duration_ns,
    integrate_duration,
    integrate_instructions,
)

MB = 1024 * 1024


def make_cache(capacity=8 * MB, exponent=0.5):
    return SharedCache(capacity, reuse_exponent=exponent)


class TestMemoryProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryProfile(wss_bytes=-1)
        with pytest.raises(ValueError):
            MemoryProfile(llc_ref_rate=-0.1)
        with pytest.raises(ValueError):
            MemoryProfile(base_cpi_ns=0)

    def test_defaults(self):
        profile = MemoryProfile()
        assert profile.wss_bytes == 0
        assert profile.llc_ref_rate == 0.0


class TestOccupancy:
    def test_insert_grows_occupancy(self):
        cache = make_cache()
        cache.insert("a", 1 * MB, wss_bytes=4 * MB)
        assert cache.occupancy_of("a") == pytest.approx(1 * MB)

    def test_occupancy_capped_at_wss(self):
        cache = make_cache()
        cache.insert("a", 10 * MB, wss_bytes=2 * MB)
        assert cache.occupancy_of("a") == pytest.approx(2 * MB)

    def test_occupancy_capped_at_capacity(self):
        cache = make_cache(capacity=1 * MB)
        cache.insert("a", 10 * MB, wss_bytes=4 * MB)
        assert cache.occupancy_of("a") <= 1 * MB + 1

    def test_full_cache_evicts_others_proportionally(self):
        cache = make_cache(capacity=4 * MB)
        cache.insert("a", 3 * MB, wss_bytes=4 * MB)
        cache.insert("b", 1 * MB, wss_bytes=4 * MB)
        # cache is full; c's fills must displace a and b 3:1
        cache.insert("c", 2 * MB, wss_bytes=4 * MB)
        assert cache.total_occupancy <= cache.capacity_bytes + 1
        assert cache.occupancy_of("c") == pytest.approx(2 * MB)
        ratio = cache.occupancy_of("a") / cache.occupancy_of("b")
        assert ratio == pytest.approx(3.0, rel=0.01)

    def test_churn_pressure_evicts_neighbours(self):
        """A trashing actor at its target still displaces others."""
        cache = make_cache(capacity=4 * MB)
        cache.insert("victim", 2 * MB, wss_bytes=2 * MB)
        cache.insert("trasher", 2 * MB, wss_bytes=64 * MB)
        before = cache.occupancy_of("victim")
        cache.insert("trasher", 8 * MB, wss_bytes=64 * MB)
        assert cache.occupancy_of("victim") < before

    def test_evict_actor_frees_space(self):
        cache = make_cache()
        cache.insert("a", 1 * MB, wss_bytes=4 * MB)
        freed = cache.evict_actor("a")
        assert freed == pytest.approx(1 * MB)
        assert cache.occupancy_of("a") == 0.0
        assert cache.total_occupancy == pytest.approx(0.0)

    def test_flush(self):
        cache = make_cache()
        cache.insert("a", 1 * MB, wss_bytes=4 * MB)
        cache.flush()
        assert cache.total_occupancy == 0.0
        assert cache.actors() == []

    def test_zero_insert_is_noop(self):
        cache = make_cache()
        cache.insert("a", 0, wss_bytes=4 * MB)
        assert cache.occupancy_of("a") == 0.0


class TestHitProbability:
    def test_zero_wss_always_hits(self):
        cache = make_cache()
        assert cache.hit_probability("a", 0) == 1.0

    def test_cold_actor_misses(self):
        cache = make_cache()
        assert cache.hit_probability("a", 4 * MB) == 0.0

    def test_fully_resident_hits(self):
        cache = make_cache()
        cache.insert("a", 4 * MB, wss_bytes=4 * MB)
        assert cache.hit_probability("a", 4 * MB) == pytest.approx(1.0)

    def test_concave_reuse_curve(self):
        cache = make_cache(exponent=0.5)
        cache.insert("a", 1 * MB, wss_bytes=4 * MB)
        assert cache.hit_probability("a", 4 * MB) == pytest.approx(
            math.sqrt(0.25)
        )

    def test_uniform_exponent_recovers_linear(self):
        cache = make_cache(exponent=1.0)
        cache.insert("a", 1 * MB, wss_bytes=4 * MB)
        assert cache.hit_probability("a", 4 * MB) == pytest.approx(0.25)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            SharedCache(1 * MB, reuse_exponent=0.0)
        with pytest.raises(ValueError):
            SharedCache(1 * MB, reuse_exponent=1.5)


class TestIntegration:
    def test_no_memory_profile_runs_at_base_cpi(self):
        cache = make_cache()
        profile = MemoryProfile(base_cpi_ns=0.5)
        seg = integrate_duration(cache, "a", profile, 1000.0, 12.0, 80.0)
        assert seg.instructions == pytest.approx(2000.0)
        assert seg.llc_refs == 0.0
        assert seg.llc_misses == 0.0

    def test_cold_cache_slower_than_warm(self):
        profile = MemoryProfile(wss_bytes=4 * MB, llc_ref_rate=0.02)
        cold = make_cache()
        seg_cold = integrate_duration(cold, "a", profile, 1e6, 12.0, 80.0)
        warm = make_cache()
        warm.insert("a", 4 * MB, wss_bytes=4 * MB)
        seg_warm = integrate_duration(warm, "a", profile, 1e6, 12.0, 80.0)
        assert seg_warm.instructions > seg_cold.instructions

    def test_integration_warms_the_cache(self):
        cache = make_cache()
        profile = MemoryProfile(wss_bytes=2 * MB, llc_ref_rate=0.02)
        integrate_duration(cache, "a", profile, 20e6, 12.0, 80.0)
        assert cache.occupancy_of("a") > 0

    def test_zero_duration(self):
        cache = make_cache()
        seg = integrate_duration(
            cache, "a", MemoryProfile(), 0.0, 12.0, 80.0
        )
        assert seg.instructions == 0.0

    def test_instruction_driven_matches_duration_driven(self):
        """Running N instructions takes the time the estimate predicts,
        within sub-step discretisation error."""
        profile = MemoryProfile(wss_bytes=2 * MB, llc_ref_rate=0.02)
        c1 = make_cache()
        seg = integrate_instructions(c1, "a", profile, 1e7, 12.0, 80.0)
        c2 = make_cache()
        seg2 = integrate_duration(c2, "a", profile, seg.elapsed_ns, 12.0, 80.0)
        assert seg2.instructions == pytest.approx(1e7, rel=0.05)

    def test_estimate_is_nonmutating(self):
        cache = make_cache()
        profile = MemoryProfile(wss_bytes=2 * MB, llc_ref_rate=0.02)
        estimate_duration_ns(cache, "a", profile, 1e6, 12.0, 80.0)
        assert cache.occupancy_of("a") == 0.0

    def test_misses_bounded_by_refs(self):
        cache = make_cache()
        profile = MemoryProfile(wss_bytes=16 * MB, llc_ref_rate=0.05)
        seg = integrate_duration(cache, "a", profile, 5e6, 12.0, 80.0)
        assert 0 <= seg.llc_misses <= seg.llc_refs


@settings(max_examples=60, deadline=None)
@given(
    inserts=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(min_value=0, max_value=16 * MB),
            st.integers(min_value=0, max_value=64 * MB),
        ),
        max_size=30,
    )
)
def test_occupancy_invariants_hold_under_any_insert_sequence(inserts):
    """Total occupancy never exceeds capacity; per-actor never exceeds
    min(wss, capacity); everything stays non-negative."""
    cache = SharedCache(8 * MB)
    max_wss: dict[str, int] = {}
    for actor, nbytes, wss in inserts:
        max_wss[actor] = max(max_wss.get(actor, 0), wss)
        cache.insert(actor, nbytes, wss_bytes=wss)
        assert cache.total_occupancy <= cache.capacity_bytes * (1 + 1e-9)
        for other in cache.actors():
            occ = cache.occupancy_of(other)
            assert occ >= 0
        occ = cache.occupancy_of(actor)
        # occupancy never exceeds the largest working set the actor has
        # declared (a shrunk wss leaves stale lines behind, evicted by
        # others over time)
        assert occ <= min(max_wss[actor], cache.capacity_bytes) + 1e-6


@settings(max_examples=40, deadline=None)
@given(
    wss=st.integers(min_value=64, max_value=32 * MB),
    duration=st.floats(min_value=1.0, max_value=1e8),
    rate=st.floats(min_value=0.0, max_value=0.1),
)
def test_integration_outputs_are_finite_and_consistent(wss, duration, rate):
    cache = SharedCache(8 * MB)
    profile = MemoryProfile(wss_bytes=wss, llc_ref_rate=rate)
    seg = integrate_duration(cache, "a", profile, duration, 12.0, 80.0)
    assert math.isfinite(seg.instructions) and seg.instructions >= 0
    assert seg.llc_refs == pytest.approx(seg.instructions * rate, rel=1e-6)
    assert 0 <= seg.llc_misses <= seg.llc_refs + 1e-9
    assert seg.elapsed_ns == pytest.approx(duration)
