"""Tests for the timeline analysis tools and CSV export."""

import pytest

from repro.guest.phases import Compute
from repro.guest.thread import GuestThread
from repro.hypervisor.machine import Machine
from repro.metrics.export import calibration_rows, scenario_rows, write_csv
from repro.metrics.timeline import (
    build_timeline,
    render_gantt,
    scheduling_delays,
)
from repro.sim.tracing import TraceRecorder
from repro.sim.units import MS, SEC


def hog_body(thread):
    while True:
        yield Compute(5_000_000)


def traced_machine(hogs=2, pcpus=1, quantum=30 * MS):
    machine = Machine(
        seed=0,
        default_quantum_ns=quantum,
        trace=TraceRecorder(enabled=True),
    )
    pool = machine.create_pool("p", machine.topology.pcpus[:pcpus], quantum)
    for i in range(hogs):
        vm = machine.new_vm(f"vm{i}", 1)
        machine.default_pool.remove_vcpu(vm.vcpus[0])
        pool.add_vcpu(vm.vcpus[0])
        vm.guest.add_thread(GuestThread(f"t{i}", hog_body))
    return machine


class TestTimeline:
    def test_intervals_cover_busy_pcpu(self):
        machine = traced_machine(hogs=2, pcpus=1)
        machine.run(500 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        assert timeline.busy_fraction(0) == pytest.approx(1.0, rel=0.01)

    def test_intervals_alternate_between_hogs(self):
        machine = traced_machine(hogs=2, pcpus=1, quantum=10 * MS)
        machine.run(200 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        a = timeline.intervals_of("vm0/v0")
        b = timeline.intervals_of("vm1/v0")
        assert len(a) >= 5 and len(b) >= 5
        # intervals never overlap on the single pCPU
        ordered = sorted(timeline.intervals, key=lambda i: i.start)
        for first, second in zip(ordered, ordered[1:]):
            assert first.end <= second.start + 1

    def test_quantum_bounds_interval_length(self):
        machine = traced_machine(hogs=2, pcpus=1, quantum=10 * MS)
        machine.run(300 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        for interval in timeline.intervals:
            assert interval.duration <= 10 * MS + 1

    def test_wake_to_dispatch_recorded(self):
        from repro.guest.phases import Sleep

        machine = Machine(seed=0, trace=TraceRecorder(enabled=True))
        vm = machine.new_vm("vm", 1)

        def napper(thread):
            while True:
                yield Compute(1_000_000)
                yield Sleep(5 * MS)

        vm.guest.add_thread(GuestThread("n", napper))
        machine.run(200 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        delays = scheduling_delays(timeline, "vm/v0")
        assert delays
        assert all(d >= 0 for d in delays)
        # alone on the machine: wake-ups dispatch immediately
        assert max(delays) < 1 * MS

    def test_gantt_renders(self):
        machine = traced_machine(hogs=2, pcpus=2)
        machine.run(200 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        art = render_gantt(timeline, width=40)
        assert "pCPU0" in art and "pCPU1" in art
        assert "A=vm0/v0" in art

    def test_gantt_empty_window_rejected(self):
        machine = traced_machine()
        machine.run(10 * MS)
        timeline = build_timeline(machine.trace, machine.sim.now)
        with pytest.raises(ValueError):
            render_gantt(timeline, start=5, end=5)


class TestCsvExport:
    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "c": 3.5}]
        path = write_csv(tmp_path / "out.csv", rows)
        text = path.read_text()
        assert "a,b,c" in text.splitlines()[0]
        assert "2" in text

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "out.csv", [])

    def test_calibration_rows(self, tmp_path):
        from repro.core.calibration import run_calibration

        result = run_calibration(
            quanta_ms=(1, 30),
            consolidations=(2,),
            kinds=("lolcf",),
            warmup_ns=100 * MS,
            measure_ns=300 * MS,
        )
        rows = calibration_rows(result)
        assert any(r["kind"] == "lolcf" for r in rows)
        write_csv(tmp_path / "fig2.csv", rows)

    def test_scenario_rows(self, tmp_path):
        from repro.baselines import XenCredit
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenarios import AppPlacement, Scenario

        scenario = Scenario(
            "tiny", (AppPlacement("hmmer", 2),), pcpus=2
        )
        run = run_scenario(
            scenario, XenCredit(), warmup_ns=100 * MS, measure_ns=300 * MS
        )
        rows = scenario_rows(run)
        assert len(rows) == 2
        assert rows[0]["policy"] == "xen"
        write_csv(tmp_path / "scenario.csv", rows)


class TestChromeTrace:
    def test_slices_and_metadata(self, tmp_path):
        import json

        from repro.metrics.chrome_trace import (
            to_chrome_trace,
            write_chrome_trace,
        )

        machine = traced_machine(hogs=2, pcpus=1, quantum=10 * MS)
        machine.run(200 * MS)
        doc = to_chrome_trace(machine.trace, machine.sim.now)
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices, "a busy machine must produce occupancy slices"
        names = {e["name"] for e in slices}
        assert {"vm0/v0", "vm1/v0"} <= names
        # ts/dur are microseconds: total busy time ~ 200 ms on 1 pCPU
        busy_us = sum(e["dur"] for e in slices if e["tid"] == 0)
        assert busy_us == pytest.approx(200_000, rel=0.02)
        metas = [e for e in events if e["ph"] == "M"]
        assert any(e["args"].get("name") == "pCPU0" for e in metas)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, machine.trace, machine.sim.now)
        assert count == len(events)
        assert json.loads(path.read_text())["traceEvents"] == events

    def test_churn_events_become_instants(self, tmp_path):
        from repro.dynamics import (
            ChurnEngine,
            ChurnTimeline,
            PhaseChange,
            SwitchableWorkload,
            VmShutdown,
        )
        from repro.metrics.chrome_trace import to_chrome_trace
        from repro.sim.tracing import TraceRecorder

        machine = Machine(seed=1, trace=TraceRecorder(enabled=True))
        workloads = {}
        for name, mode in (("a", "llcf"), ("b", "llco")):
            vm = machine.new_vm(name, 1)
            workload = SwitchableWorkload(name, mode=mode, clients=2)
            workload.install(machine, vm)
            workloads[name] = workload
        timeline = ChurnTimeline(
            (
                PhaseChange(50 * MS, name="a", mode="io"),
                VmShutdown(100 * MS, name="b"),
            )
        )
        engine = ChurnEngine(machine, timeline, workloads=workloads)
        machine.run(10 * MS)
        engine.arm()
        machine.run(200 * MS)
        doc = to_chrome_trace(machine.trace, machine.sim.now)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        by_name = {e["name"] for e in instants}
        assert "phase a -> io" in by_name
        assert "shutdown b" in by_name
        assert "vm-shutdown" in by_name
        # instants carry their payload and a global scope marker
        for instant in instants:
            assert instant["s"] == "g"
