"""Regression pin for the same-timestamp churn fire order.

:class:`~repro.dynamics.events.ChurnTimeline` documents that events
sharing an identical ``at_ns`` fire in tuple order (the engine arms in
tuple order, and the simulator breaks same-instant ties by scheduling
sequence).  The fuzzer's generator leans on that contract when it
emits dependent same-instant pairs, so it gets its own test: the pair
(boot ``x``, phase-change ``x``) at one timestamp must work in tuple
order and fail loudly when reversed.
"""

import pytest

from repro.dynamics.events import ChurnTimeline, PhaseChange, VmBoot
from repro.fuzz import FuzzScenario, run_scenario_fuzz
from repro.sim.units import MS


def test_simulator_breaks_same_instant_ties_by_schedule_order():
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired: list[str] = []
    for name in ("first", "second", "third"):
        sim.at(100, lambda n=name: fired.append(n), name)
    sim.run_until(200)
    assert fired == ["first", "second", "third"]


def test_same_instant_pair_fires_in_tuple_order():
    """boot(x) then phase(x) at one timestamp: the boot must land
    first, and the phase change must stick."""
    t = 200 * MS
    scenario = FuzzScenario(
        seed=7,
        pcpus=2,
        policy="xen",
        base=(("base0", "llcf"),),
        timeline=ChurnTimeline((
            VmBoot(t, name="hot0", mode="llcf"),
            PhaseChange(t, name="hot0", mode="io"),
        )),
    )
    outcome = run_scenario_fuzz(scenario)
    applied = outcome.engine.applied
    assert [a.event.kind for a in applied] == ["vm_boot", "phase_change"]
    assert applied[0].time_ns == applied[1].time_ns
    assert outcome.workloads["hot0"].mode == "io"
    # the phase change took effect *after* install: it is on record
    assert outcome.workloads["hot0"].mode_changes


def test_reversed_same_instant_pair_rejected_statically():
    """phase(x) before boot(x) at the same instant is invalid: the
    static validator walks events in tuple order, same as fire order."""
    from repro.fuzz import scenario_problems

    t = 200 * MS
    scenario = FuzzScenario(
        seed=7,
        pcpus=2,
        policy="xen",
        base=(("base0", "llcf"),),
        timeline=ChurnTimeline((
            PhaseChange(t, name="hot0", mode="io"),
            VmBoot(t, name="hot0", mode="llcf"),
        )),
    )
    assert any("not alive" in p for p in scenario_problems(scenario))
    with pytest.raises(ValueError, match="not runnable"):
        run_scenario_fuzz(scenario)


def test_reversed_same_instant_pair_fails_at_fire_time():
    """Driving the engine directly (no static validation): the phase
    change fires first and hits a VM that does not exist yet — the
    tie-break is real ordering, not luck."""
    from repro.dynamics import ChurnEngine, SwitchableWorkload
    from repro.hypervisor.machine import Machine

    machine = Machine(seed=0)
    vm = machine.new_vm("base0", 1)
    workload = SwitchableWorkload("base0", mode="llcf", clients=2)
    workload.install(machine, vm)
    t = 200 * MS
    engine = ChurnEngine(
        machine,
        ChurnTimeline((
            PhaseChange(t, name="hot0", mode="io"),
            VmBoot(t, name="hot0", mode="llcf"),
        )),
        workloads={"base0": workload},
    )
    machine.run(50 * MS)
    engine.arm(origin_ns=0)
    with pytest.raises(KeyError):
        machine.run(300 * MS)
