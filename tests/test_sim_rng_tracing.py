"""Tests for RNG stream management and the trace recorder."""

import pytest

from repro.sim.rng import RngFactory
from repro.sim.tracing import TraceRecorder


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).stream("io/vm1")
        b = RngFactory(42).stream("io/vm1")
        assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))

    def test_different_names_different_streams(self):
        factory = RngFactory(42)
        a = factory.stream("io/vm1")
        b = factory.stream("io/vm2")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_different_seeds_different_streams(self):
        a = RngFactory(1).stream("x")
        b = RngFactory(2).stream("x")
        assert list(a.integers(0, 10**9, 8)) != list(b.integers(0, 10**9, 8))

    def test_child_factory_is_deterministic(self):
        a = RngFactory(7).child("sub").stream("s")
        b = RngFactory(7).child("sub").stream("s")
        assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_child_differs_from_parent(self):
        parent = RngFactory(7)
        child = parent.child("sub")
        assert parent.seed != child.seed

    @pytest.mark.parametrize("bad", [-1, 1.5, "x", None])
    def test_invalid_seed_rejected(self, bad):
        with pytest.raises(ValueError):
            RngFactory(bad)


class TestTraceRecorder:
    def test_disabled_recorder_drops_records(self):
        trace = TraceRecorder(enabled=False)
        trace.emit(1, "dispatch", vcpu="a")
        assert len(trace) == 0

    def test_enabled_recorder_keeps_records(self):
        trace = TraceRecorder(enabled=True)
        trace.emit(1, "dispatch", vcpu="a")
        trace.emit(2, "block", vcpu="a")
        assert len(trace) == 2
        assert trace.records()[0].payload == {"vcpu": "a"}

    def test_kind_filter(self):
        trace = TraceRecorder(enabled=True, kinds={"block"})
        trace.emit(1, "dispatch")
        trace.emit(2, "block")
        assert [r.kind for r in trace] == ["block"]

    def test_records_by_kind(self):
        trace = TraceRecorder(enabled=True)
        trace.emit(1, "a")
        trace.emit(2, "b")
        trace.emit(3, "a")
        assert [r.time for r in trace.records("a")] == [1, 3]

    def test_clear(self):
        trace = TraceRecorder(enabled=True)
        trace.emit(1, "a")
        trace.clear()
        assert len(trace) == 0
