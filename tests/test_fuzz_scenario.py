"""FuzzScenario serialisation and the static applicability validator."""

import pytest

from repro.dynamics.events import (
    ChurnTimeline,
    LoadSpike,
    PcpuOffline,
    PcpuOnline,
    PhaseChange,
    VmBoot,
    VmShutdown,
)
from repro.fuzz import FuzzScenario, scenario_problems
from repro.fuzz.scenario import event_from_json, event_to_json
from repro.sim.units import MS

ALL_KINDS = (
    VmBoot(100, name="a", mode="io", vcpus=2),
    VmShutdown(200, name="a"),
    PhaseChange(300, name="b", mode="spin"),
    LoadSpike(400, name="b", factor=3.5, duration_ns=50 * MS),
    PcpuOffline(500, cpu_id=1),
    PcpuOnline(600, cpu_id=1),
)


def _scenario(events=(), base=(("b", "llcf"), ("c", "io")), **kw):
    defaults = dict(
        seed=3, pcpus=2, policy="aql", base=tuple(base),
        timeline=ChurnTimeline(tuple(events)),
    )
    defaults.update(kw)
    return FuzzScenario(**defaults)


class TestEventJson:
    @pytest.mark.parametrize("event", ALL_KINDS, ids=lambda e: e.kind)
    def test_round_trip(self, event):
        assert event_from_json(event_to_json(event)) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown churn event kind"):
            event_from_json({"kind": "meteor_strike", "at_ns": 0})


class TestScenarioJson:
    def test_full_round_trip(self, tmp_path):
        scenario = _scenario(
            events=(VmBoot(100 * MS, name="a"), PhaseChange(100 * MS, name="a")),
            inject="skip_credit_refill",
            label="pinned",
        )
        clone = FuzzScenario.from_json(scenario.to_json())
        assert clone == scenario
        path = scenario.save(tmp_path / "case.json")
        assert FuzzScenario.load(path) == scenario

    def test_measure_covers_tail_past_last_event(self):
        scenario = _scenario(events=(VmShutdown(700 * MS, name="b"),))
        assert scenario.measure_ns == 700 * MS + scenario.tail_ns


class TestValidator:
    def test_valid_story_has_no_problems(self):
        scenario = _scenario(events=(
            VmBoot(100 * MS, name="a", mode="llco"),
            PhaseChange(100 * MS, name="a", mode="io"),
            LoadSpike(200 * MS, name="a"),
            PcpuOffline(300 * MS, cpu_id=0),
            PcpuOnline(400 * MS, cpu_id=0),
            VmShutdown(500 * MS, name="a"),
        ))
        assert scenario_problems(scenario) == []

    @pytest.mark.parametrize("events,needle", [
        ((VmBoot(1, name="b"),), "name already used"),
        ((VmShutdown(1, name="ghost"),), "not alive"),
        ((VmShutdown(1, name="b"), VmShutdown(2, name="c")),
         "no VM alive"),
        ((PhaseChange(1, name="ghost"),), "not alive"),
        ((LoadSpike(1, name="ghost"),), "not alive"),
        ((PcpuOffline(1, cpu_id=7),), "no such core"),
        ((PcpuOffline(1, cpu_id=0), PcpuOffline(2, cpu_id=0)),
         "already dark"),
        ((PcpuOffline(1, cpu_id=0), PcpuOffline(2, cpu_id=1)),
         "last core"),
        ((PcpuOnline(1, cpu_id=0),), "not offline"),
        ((VmBoot(5, name="a"), VmBoot(2, name="z")), "not in time order"),
    ])
    def test_invalid_timelines_flagged(self, events, needle):
        problems = scenario_problems(_scenario(events=events))
        assert any(needle in p for p in problems), problems

    def test_bad_scalars_flagged(self):
        bad = _scenario(
            base=(("x", "llcf"), ("x", "io")), policy="fifo", pcpus=1,
            clients=0, warmup_ns=0,
        )
        problems = " / ".join(scenario_problems(bad))
        for needle in (
            "duplicate base", "unknown policy", "2 pCPUs", "one client",
            "must be positive",
        ):
            assert needle in problems

    def test_empty_base_flagged(self):
        problems = scenario_problems(_scenario(base=()))
        assert any("empty" in p for p in problems)
