"""Tests for result tables, normalisation helpers and PoolPlan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypervisor.machine import Machine
from repro.hypervisor.pools import CpuPool, PoolPlan
from repro.metrics.tables import ResultTable, format_quantum, normalize_map
from repro.sim.units import MS
from repro.workloads.base import PerfResult


class TestResultTable:
    def test_render_contains_rows(self):
        table = ResultTable("Title", ["a", "b"])
        table.add_row("x", 1.234)
        text = table.render()
        assert "Title" in text
        assert "1.234" in text
        assert "x" in text

    def test_wrong_cell_count_rejected(self):
        table = ResultTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_alignment_widths(self):
        table = ResultTable("T", ["col"])
        table.add_row("a-very-long-cell-value")
        lines = table.render().splitlines()
        assert len(lines[1]) <= len(lines[3])


class TestNormalize:
    def test_normalize_map(self):
        base = {"a": PerfResult("a", "m", 2.0)}
        res = {"a": PerfResult("a", "m", 1.0)}
        assert normalize_map(res, base) == {"a": 0.5}

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            normalize_map({"a": PerfResult("a", "m", 1.0)}, {})

    def test_format_quantum(self):
        assert format_quantum(None) == "agnostic"
        assert format_quantum(90 * MS) == "90ms"


class TestCpuPool:
    def test_load_ratio(self):
        machine = Machine(seed=0)
        pool = CpuPool(1, "p", 30 * MS)
        pool.add_pcpu(machine.topology.pcpus[0])
        vm = machine.new_vm("vm", 2)
        for vcpu in vm.vcpus:
            pool.add_vcpu(vcpu)
        assert pool.load == 2.0

    def test_empty_pool_with_vcpus_has_infinite_load(self):
        machine = Machine(seed=0)
        pool = CpuPool(1, "p", 30 * MS)
        vm = machine.new_vm("vm", 1)
        pool.add_vcpu(vm.vcpus[0])
        assert pool.load == float("inf")

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            CpuPool(1, "p", 0)

    def test_membership(self):
        machine = Machine(seed=0)
        pool = CpuPool(1, "p", 30 * MS)
        pcpu = machine.topology.pcpus[0]
        pool.add_pcpu(pcpu)
        assert pcpu in pool
        vm = machine.new_vm("vm", 1)
        pool.add_vcpu(vm.vcpus[0])
        assert vm.vcpus[0] in pool
        pool.remove_vcpu(vm.vcpus[0])
        assert vm.vcpus[0] not in pool
        assert vm.vcpus[0].pool is None


class TestPoolPlanValidation:
    def test_valid_plan_passes(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        plan = PoolPlan()
        plan.add("a", machine.topology.pcpus[:4], 1 * MS, [vm.vcpus[0]])
        plan.add("b", machine.topology.pcpus[4:], 90 * MS, [vm.vcpus[1]])
        plan.validate(machine.topology.pcpus, vm.vcpus)

    def test_duplicate_pcpu_rejected(self):
        machine = Machine(seed=0)
        plan = PoolPlan()
        plan.add("a", machine.topology.pcpus, 1 * MS, [])
        plan.add("b", machine.topology.pcpus[:1], 1 * MS, [])
        with pytest.raises(ValueError):
            plan.validate(machine.topology.pcpus, [])

    def test_vcpus_without_pcpus_rejected(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        plan = PoolPlan()
        plan.add("a", [], 1 * MS, [vm.vcpus[0]])
        plan.add("b", machine.topology.pcpus, 1 * MS, [])
        with pytest.raises(ValueError):
            plan.validate(machine.topology.pcpus, vm.vcpus)

    def test_nonpositive_quantum_rejected(self):
        machine = Machine(seed=0)
        plan = PoolPlan()
        plan.add("a", machine.topology.pcpus, 0, [])
        with pytest.raises(ValueError):
            plan.validate(machine.topology.pcpus, [])

    @settings(max_examples=40, deadline=None)
    @given(split=st.integers(min_value=0, max_value=8))
    def test_any_partition_of_pcpus_is_valid(self, split):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        pcpus = machine.topology.pcpus
        plan = PoolPlan()
        target = 0 if split > 0 else 1
        plan.add("a", pcpus[:split], 30 * MS,
                 [vm.vcpus[0]] if split > 0 else [])
        plan.add("b", pcpus[split:], 30 * MS,
                 [] if split > 0 else [vm.vcpus[0]])
        if split == 8:
            # pool b empty of pcpus but holds no vcpus: fine
            plan.entries[-1] = ("b", [], 30 * MS, [])
        plan.validate(pcpus, vm.vcpus)
