"""Tests for the cursor equations (1)-(5), incl. hand-computed values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cursors import CursorLimits, MetricSample, compute_cursors
from repro.core.types import CPU_BURN_TYPES, VCpuType

LIMITS = CursorLimits(
    io_limit=10.0, conspin_limit=100.0, llc_rr_limit=0.004, llc_mr_limit=0.75
)


class TestSaturatingCursors:
    def test_io_below_limit_is_linear(self):
        sample = MetricSample(io_events=5.0)
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.IOINT] == pytest.approx(50.0)

    def test_io_at_limit_saturates(self):
        sample = MetricSample(io_events=10.0)
        assert compute_cursors(sample, LIMITS)[VCpuType.IOINT] == 100.0

    def test_io_above_limit_saturates(self):
        sample = MetricSample(io_events=500.0)
        assert compute_cursors(sample, LIMITS)[VCpuType.IOINT] == 100.0

    def test_conspin_linear(self):
        sample = MetricSample(spin_events=25.0)
        assert compute_cursors(sample, LIMITS)[VCpuType.CONSPIN] == pytest.approx(25.0)

    def test_zero_sample_gives_pure_lolcf(self):
        cursors = compute_cursors(MetricSample(), LIMITS)
        assert cursors[VCpuType.IOINT] == 0.0
        assert cursors[VCpuType.CONSPIN] == 0.0
        assert cursors[VCpuType.LOLCF] == 100.0
        assert cursors[VCpuType.LLCF] == 0.0
        assert cursors[VCpuType.LLCO] == 0.0


class TestCpuBurnCursors:
    def test_pure_llcf_profile(self):
        """High RR (not LoLCF), zero misses: fully LLCF."""
        sample = MetricSample(
            instructions=1e6, llc_refs=20_000.0, llc_misses=0.0
        )
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.LOLCF] == 0.0
        assert cursors[VCpuType.LLCF] == pytest.approx(100.0)
        assert cursors[VCpuType.LLCO] == pytest.approx(0.0)

    def test_pure_llco_profile(self):
        """High RR, miss ratio above the limit: fully LLCO."""
        sample = MetricSample(
            instructions=1e6, llc_refs=20_000.0, llc_misses=18_000.0
        )
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.LLCF] == 0.0
        assert cursors[VCpuType.LLCO] == pytest.approx(100.0)

    def test_hand_computed_mixed_case(self):
        """RR = 0.002 (half the limit), MR = 0.25 (a third of 0.75).

        Eq. 3: LoLCF = (0.004 - 0.002)/0.004 * 100 = 50.
        Eq. 4: LLCF = min(100 - 50, (0.75 - 0.25)/0.75 * 100) = 50.
        Eq. 5: LLCO = 100 - 50 - 50 = 0.
        """
        sample = MetricSample(
            instructions=1e6, llc_refs=2_000.0, llc_misses=500.0
        )
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.LOLCF] == pytest.approx(50.0)
        assert cursors[VCpuType.LLCF] == pytest.approx(50.0)
        assert cursors[VCpuType.LLCO] == pytest.approx(0.0)

    def test_llcf_bounded_by_lolcf_complement(self):
        """Eq. 4's min(): tiny RR forces LLCF below 100 - LoLCF even
        with a perfect miss ratio."""
        sample = MetricSample(
            instructions=1e6, llc_refs=1_000.0, llc_misses=0.0
        )
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.LOLCF] == pytest.approx(75.0)
        assert cursors[VCpuType.LLCF] == pytest.approx(25.0)

    def test_no_instructions_reads_as_lolcf(self):
        sample = MetricSample(instructions=0.0, llc_refs=0.0)
        cursors = compute_cursors(sample, LIMITS)
        assert cursors[VCpuType.LOLCF] == 100.0

    def test_mr_with_zero_refs_is_zero(self):
        sample = MetricSample(instructions=1e6, llc_refs=0.0, llc_misses=0.0)
        assert sample.llc_mr_level == 0.0


class TestLimitsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"io_limit": 0},
            {"conspin_limit": -1},
            {"llc_rr_limit": 0},
            {"llc_mr_limit": 0},
        ],
    )
    def test_nonpositive_limits_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CursorLimits(**kwargs)


@settings(max_examples=200, deadline=None)
@given(
    io=st.floats(min_value=0, max_value=1e6),
    spin=st.floats(min_value=0, max_value=1e6),
    instructions=st.floats(min_value=0, max_value=1e12),
    refs=st.floats(min_value=0, max_value=1e10),
    miss_fraction=st.floats(min_value=0, max_value=1),
)
def test_cursor_invariants(io, spin, instructions, refs, miss_fraction):
    """Equation 2 (CPU-burn trio sums to 100) and range invariants hold
    for every conceivable sample."""
    sample = MetricSample(
        io_events=io,
        spin_events=spin,
        instructions=instructions,
        llc_refs=refs,
        llc_misses=refs * miss_fraction,
    )
    cursors = compute_cursors(sample, LIMITS)
    for vtype, value in cursors.items():
        assert -1e-9 <= value <= 100.0 + 1e-9, f"{vtype} out of range"
    cpu_sum = sum(cursors[t] for t in CPU_BURN_TYPES)
    assert cpu_sum == pytest.approx(100.0)
