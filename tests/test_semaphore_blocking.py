"""Tests for blocking semaphores and the blocking-sync workload."""

import pytest

from repro.guest.phases import Compute, SemAcquire, SemRelease
from repro.guest.semaphore import Semaphore
from repro.guest.thread import GuestThread, ThreadState
from repro.hypervisor.machine import Machine
from repro.sim.units import MS, SEC
from repro.workloads.blocking import BlockingSyncWorkload


def make_thread(name="t"):
    def body(thread):
        yield Compute(1)

    return GuestThread(name, body)


class TestSemaphoreUnit:
    def test_uncontended_acquire(self):
        sem = Semaphore("s", initial=1)
        t = make_thread()
        assert sem.try_acquire(t, now=0)
        assert sem.count == 0
        assert sem.stats.acquisitions == 1

    def test_contended_acquire_queues(self):
        sem = Semaphore("s", initial=1)
        a, b = make_thread("a"), make_thread("b")
        sem.try_acquire(a, now=0)
        assert not sem.try_acquire(b, now=1)
        assert sem.waiting_count == 1
        assert sem.stats.contended_acquisitions == 1

    def test_release_hands_unit_to_waiter(self):
        sem = Semaphore("s", initial=1)
        a, b = make_thread("a"), make_thread("b")
        sem.try_acquire(a, now=0)
        sem.try_acquire(b, now=1)
        waiter = sem.release(a, now=10)
        assert waiter is b
        assert sem.count == 0  # unit handed over, not returned
        sem.grant_to(b, now=25)
        assert sem.stats.total_wait_ns == 24
        assert sem.release(b, now=30) is None
        assert sem.count == 1

    def test_release_without_holding_raises(self):
        sem = Semaphore("s")
        with pytest.raises(RuntimeError):
            sem.release(make_thread(), now=0)

    def test_counting_semaphore(self):
        sem = Semaphore("s", initial=2)
        a, b, c = (make_thread(n) for n in "abc")
        assert sem.try_acquire(a, now=0)
        assert sem.try_acquire(b, now=0)
        assert not sem.try_acquire(c, now=0)

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore("s", initial=-1)

    def test_fifo_order(self):
        sem = Semaphore("s", initial=1)
        a, b, c = (make_thread(n) for n in "abc")
        sem.try_acquire(a, now=0)
        sem.try_acquire(b, now=1)
        sem.try_acquire(c, now=2)
        assert sem.release(a, now=3) is b


class TestSemaphoreExecution:
    def test_contended_waiter_blocks_instead_of_spinning(self):
        """Unlike a spin lock, a semaphore waiter's vCPU blocks."""
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        sem = Semaphore("s", initial=1)
        order = []

        def holder(thread):
            yield SemAcquire(sem)
            yield Compute(30_000_000)  # ~10 ms critical section
            yield SemRelease(sem)
            order.append(("released", machine.sim.now))

        def waiter(thread):
            yield Compute(3_000_000)  # arrive second
            yield SemAcquire(sem)
            order.append(("acquired", machine.sim.now))
            yield SemRelease(sem)

        h = GuestThread("h", holder)
        w = GuestThread("w", waiter)
        vm.guest.add_thread(h, vm.vcpus[0])
        vm.guest.add_thread(w, vm.vcpus[1])
        machine.run(5 * MS)
        assert w.state == ThreadState.BLOCKED  # not SPINNING
        assert w.spin_ns == 0.0
        machine.run(100 * MS)
        timeline = dict(order)
        assert timeline["acquired"] >= timeline["released"]
        assert w.spin_ns == 0.0  # never burned a cycle waiting

    def test_no_ple_exits_from_semaphores(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:1], 10 * MS)
        vm = machine.new_vm("vm", 2, weight=512)
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)
        workload = BlockingSyncWorkload("b", threads=2)
        workload.install(machine, vm)
        machine.run(1 * SEC)
        assert sum(v.ple.exits for v in vm.vcpus) == 0


class TestBlockingSyncWorkload:
    def test_jobs_complete_and_metric(self):
        machine = Machine(seed=0)
        pool = machine.create_pool("p", machine.topology.pcpus[:2], 30 * MS)
        vm = machine.new_vm("vm", 4, weight=1024)
        for vcpu in vm.vcpus:
            machine.default_pool.remove_vcpu(vcpu)
            pool.add_vcpu(vcpu)
        workload = BlockingSyncWorkload("b", threads=4)
        workload.install(machine, vm)
        machine.run(300 * MS)
        workload.begin_measurement()
        machine.run(1 * SEC)
        result = workload.result()
        assert result.metric == "ns_per_job"
        assert dict(result.details)["jobs"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingSyncWorkload("b", threads=0)
        with pytest.raises(ValueError):
            BlockingSyncWorkload("b", cs_instructions=0)


class TestSyncPrimitiveAblation:
    def test_blocking_less_quantum_sensitive_than_spinning(self):
        from repro.experiments.sync_primitives import run_sync_primitives

        result = run_sync_primitives(
            quanta_ms=(1, 90),
            warmup_ns=300 * MS,
            measure_ns=1 * SEC,
        )
        spin_degradation = result.degradation("spin")
        blocking_degradation = result.degradation("semaphore")
        assert spin_degradation > blocking_degradation
