"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationError, Simulator, noop
from repro.sim.units import MS, SEC, US, fmt_time


class TestScheduling:
    def test_at_runs_callback_at_time(self):
        sim = Simulator()
        fired = []
        sim.at(100, lambda: fired.append(sim.now))
        sim.run_until(200)
        assert fired == [100]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        fired = []
        sim.at(50, lambda: sim.after(25, lambda: fired.append(sim.now)))
        sim.run_until(100)
        assert fired == [75]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: order.append("a"))
        sim.at(10, lambda: order.append("b"))
        sim.at(10, lambda: order.append("c"))
        sim.run_until(10)
        assert order == ["a", "b", "c"]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(30, lambda: order.append(30))
        sim.at(10, lambda: order.append(10))
        sim.at(20, lambda: order.append(20))
        sim.run_until(100)
        assert order == [10, 20, 30]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.at(50, noop)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, noop)

    def test_event_scheduled_now_fires(self):
        sim = Simulator()
        fired = []
        sim.run_until(100)
        sim.at(100, lambda: fired.append(True))
        sim.run_until(100)
        assert fired == [True]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.at(10, lambda: fired.append(True))
        event.cancel()
        sim.run_until(100)
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.at(10, noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancel_from_earlier_event(self):
        sim = Simulator()
        fired = []
        later = sim.at(20, lambda: fired.append("later"))
        sim.at(10, later.cancel)
        sim.run_until(100)
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.at(10, noop)
        sim.at(20, noop)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestRunning:
    def test_clock_lands_exactly_on_end_time(self):
        sim = Simulator()
        sim.at(10, noop)
        sim.run_until(55)
        assert sim.now == 55

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.run_until(50)

    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.at(200, lambda: fired.append(True))
        sim.run_until(100)
        assert fired == []
        sim.run_until(300)
        assert fired == [True]

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, noop)
        sim.run_until(10)
        assert sim.events_fired == 3

    def test_step_fires_single_event(self):
        sim = Simulator()
        order = []
        sim.at(5, lambda: order.append(5))
        sim.at(7, lambda: order.append(7))
        event = sim.step()
        assert isinstance(event, Event)
        assert order == [5]
        assert sim.now == 5

    def test_step_empty_returns_none(self):
        sim = Simulator()
        assert sim.step() is None

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.at(5, noop)
        sim.at(9, noop)
        first.cancel()
        assert sim.peek_time() == 9

    def test_peek_time_empty(self):
        sim = Simulator()
        assert sim.peek_time() is None

    def test_reentrant_run_raises(self):
        sim = Simulator()

        def reenter():
            sim.run_until(100)

        sim.at(1, reenter)
        with pytest.raises(SimulationError):
            sim.run_until(10)


class TestPeriodicPattern:
    def test_self_rescheduling_event(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.after(10, tick)

        sim.after(10, tick)
        sim.run_until(55)
        assert ticks == [10, 20, 30, 40, 50]


class TestUnits:
    def test_constants(self):
        assert US == 1_000
        assert MS == 1_000_000
        assert SEC == 1_000_000_000

    @pytest.mark.parametrize(
        "value,expected",
        [
            (5, "5ns"),
            (3 * US, "3.000us"),
            (30 * MS, "30.000ms"),
            (2 * SEC, "2.000s"),
        ],
    )
    def test_fmt_time(self, value, expected):
        assert fmt_time(value) == expected
