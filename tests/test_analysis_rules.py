"""Fixture-driven rule tests plus targeted unit checks per rule.

Every file under ``tests/analysis_fixtures/`` declares its identity and
its expected findings in two header directives::

    # simlint: module=repro.sim.fake_fixture     (read by the analyzer)
    # simlint-expect: SIM004:8 SIM004:12         (read by this test)

so adding coverage for a new rule is dropping in a snippet — no test
code changes.  The unit tests below pin the subtler semantic edges the
fixtures would state less clearly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import Analyzer, get_rules, module_name_for

FIXTURE_DIR = Path(__file__).parent / "analysis_fixtures"
_EXPECT_RE = re.compile(r"#\s*simlint-expect:\s*(.*)$")

analyzer = Analyzer()


def _expected_findings(path: Path) -> list[tuple[str, int]]:
    for line in path.read_text().splitlines()[:10]:
        match = _EXPECT_RE.search(line)
        if match:
            return sorted(
                (token.split(":")[0], int(token.split(":")[1]))
                for token in match.group(1).split()
            )
    raise AssertionError(f"{path.name} has no '# simlint-expect:' directive")


@pytest.mark.parametrize(
    "fixture",
    sorted(FIXTURE_DIR.glob("*.py")),
    ids=lambda path: path.stem,
)
def test_fixture_findings_match(fixture: Path):
    expected = _expected_findings(fixture)
    found = sorted(
        (violation.rule_id, violation.line)
        for violation in analyzer.analyze_file(fixture)
    )
    assert found == expected, (
        f"{fixture.name}: expected {expected}, found {found}"
    )


def test_every_rule_has_positive_and_negative_fixture():
    # rglob: whole-program fixtures (SIM008/SIM009) live in interproc/,
    # exercised by tests/test_analysis_interproc.py instead of the
    # per-file parametrization above.
    stems = {path.stem for path in FIXTURE_DIR.rglob("*.py")}
    for rule in get_rules():
        tag = rule.rule_id.lower()
        assert f"{tag}_flagged" in stems, f"no positive fixture for {rule.rule_id}"
        assert f"{tag}_clean" in stems, f"no negative fixture for {rule.rule_id}"


def test_fixture_module_directive_wins_over_path():
    fixture = FIXTURE_DIR / "sim005_flagged.py"
    assert module_name_for(fixture, fixture.read_text()) == "repro.guest.phases"


# ----------------------------------------------------------------------
# semantic edges, one per rule
# ----------------------------------------------------------------------
def _check(source: str, module: str) -> list[tuple[str, int]]:
    violations = analyzer.analyze_source(
        source, Path("<unit>"), module=module
    )
    return [(v.rule_id, v.line) for v in violations]


def test_sim001_alias_resolution():
    source = "import time as walltime\nx = walltime.perf_counter()\n"
    assert _check(source, "repro.sim.fake") == [("SIM001", 2)]


def test_sim001_allowlisted_module_is_exempt():
    source = "import time\nx = time.perf_counter()\n"
    assert _check(source, "repro.perf.profiler") == []
    assert _check(source, "benchmarks.run_bench") == []


def test_sim002_seeded_default_rng_passes():
    source = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert _check(source, "repro.dynamics.fake") == []


def test_sim002_keyword_seed_passes():
    source = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
    assert _check(source, "repro.dynamics.fake") == []


def test_sim003_sorted_wrapper_passes():
    source = "for item in sorted(set(items)):\n    pass\n"
    assert _check(source, "repro.core.clustering") == []


def test_sim003_generator_over_set_flagged():
    source = "total = list(x for x in set(items))\n"
    assert _check(source, "repro.core.clustering") == [("SIM003", 1)]


def test_sim004_floor_division_passes():
    source = "def f(total_ns):\n    return int(total_ns // 4)\n"
    assert _check(source, "repro.sim.fake") == []


def test_sim005_applies_only_to_designated_modules():
    source = "class Plain:\n    def __init__(self):\n        self.x = 1\n"
    assert _check(source, "repro.sim.engine") == [("SIM005", 1)]
    assert _check(source, "repro.sim.tracing") == []


def test_sim006_reraise_anywhere_in_handler_passes():
    source = (
        "try:\n"
        "    step()\n"
        "except Exception:\n"
        "    unwind()\n"
        "    raise\n"
    )
    assert _check(source, "repro.hypervisor.fake") == []


def test_syntax_error_reported_as_sim000():
    source = "def broken(:\n"
    assert _check(source, "repro.sim.fake") == [("SIM000", 1)]
