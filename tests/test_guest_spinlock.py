"""Tests for ticket/hybrid spin locks and spin barriers."""

import pytest

from repro.guest.barrier import SpinBarrier
from repro.guest.phases import Compute
from repro.guest.spinlock import SpinLock
from repro.guest.thread import GuestThread, ThreadState


def make_thread(name="t"):
    def body(thread):
        yield Compute(1)

    return GuestThread(name, body)


class TestUncontended:
    def test_free_lock_acquires_immediately(self):
        lock = SpinLock()
        t = make_thread()
        assert lock.try_acquire(t, now=100)
        assert lock.owner is t
        assert lock.stats.acquisitions == 1

    def test_release_with_no_waiters(self):
        lock = SpinLock()
        t = make_thread()
        lock.try_acquire(t, now=0)
        assert lock.release(t, now=50) is None
        assert lock.owner is None
        assert lock.stats.total_hold_ns == 50

    def test_release_by_non_owner_raises(self):
        lock = SpinLock()
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        with pytest.raises(RuntimeError):
            lock.release(b, now=10)

    def test_reacquire_after_release(self):
        lock = SpinLock()
        t = make_thread()
        lock.try_acquire(t, now=0)
        lock.release(t, now=10)
        assert lock.try_acquire(t, now=20)
        assert lock.stats.acquisitions == 2


class TestContended:
    def test_contender_enqueues_and_spins(self):
        lock = SpinLock()
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        assert not lock.try_acquire(b, now=5)
        assert lock.waiting_count() == 1
        assert lock.stats.contended_acquisitions == 1

    def test_double_enqueue_is_idempotent(self):
        lock = SpinLock()
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        lock.try_acquire(b, now=5)
        lock.try_acquire(b, now=6)
        assert lock.waiting_count() == 1

    def test_fifo_release_grants_head_even_offcpu(self):
        lock = SpinLock(handoff="fifo")
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        lock.try_acquire(b, now=1)
        beneficiary = lock.release(a, now=10)
        assert beneficiary is b
        assert lock.granted_to is b
        # nobody else can take it while the grant is outstanding
        c = make_thread("c")
        assert not lock.try_acquire(c, now=11)

    def test_granted_thread_completes_acquisition(self):
        lock = SpinLock(handoff="fifo")
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        lock.try_acquire(b, now=2)
        lock.release(a, now=10)
        assert lock.try_acquire(b, now=30)
        assert lock.owner is b
        # wait time runs from the acquire request (t=2) to the grant
        # pickup (t=30)
        assert lock.stats.total_wait_ns == 28

    def test_hybrid_release_with_no_oncpu_waiter_leaves_lock_free(self):
        lock = SpinLock(handoff="hybrid")
        a, b = make_thread("a"), make_thread("b")
        lock.try_acquire(a, now=0)
        lock.try_acquire(b, now=1)  # b is not on a pCPU (vcpu is None)
        assert lock.release(a, now=10) is None
        assert lock.granted_to is None
        # first scheduled waiter barges in
        assert lock.try_acquire(b, now=20)

    def test_hybrid_barging_by_newcomer(self):
        lock = SpinLock(handoff="hybrid")
        a, b, c = make_thread("a"), make_thread("b"), make_thread("c")
        lock.try_acquire(a, now=0)
        lock.try_acquire(b, now=1)
        lock.release(a, now=5)
        # c was never in the queue but the lock is free: TAS semantics
        assert lock.try_acquire(c, now=6)

    def test_unknown_handoff_rejected(self):
        with pytest.raises(ValueError):
            SpinLock(handoff="magic")

    def test_mean_duration(self):
        lock = SpinLock()
        t = make_thread()
        lock.try_acquire(t, now=0)
        lock.release(t, now=100)
        assert lock.stats.mean_duration_ns == pytest.approx(100.0)


class TestBarrier:
    def test_single_party_barrier_always_passes(self):
        barrier = SpinBarrier("b", 1)
        t = make_thread()
        assert barrier.arrive(t) == []
        assert barrier.generation == 1

    def test_last_arrival_releases_others(self):
        barrier = SpinBarrier("b", 3)
        threads = [make_thread(str(i)) for i in range(3)]
        assert barrier.arrive(threads[0]) is None
        assert barrier.arrive(threads[1]) is None
        released = barrier.arrive(threads[2])
        assert set(released) == {threads[0], threads[1]}
        assert barrier.rounds_completed == 1

    def test_generations_advance(self):
        barrier = SpinBarrier("b", 2)
        a, b = make_thread("a"), make_thread("b")
        barrier.arrive(a)
        barrier.arrive(b)
        assert barrier.generation == 1
        barrier.arrive(a)
        barrier.arrive(b)
        assert barrier.generation == 2

    def test_double_arrival_raises(self):
        barrier = SpinBarrier("b", 3)
        t = make_thread()
        barrier.arrive(t)
        with pytest.raises(RuntimeError):
            barrier.arrive(t)

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SpinBarrier("b", 0)


class TestThreadMachinery:
    def test_generator_lazily_started(self):
        t = make_thread()
        phase = t.current_phase()
        assert isinstance(phase, Compute)

    def test_exhausted_generator_yields_exit_forever(self):
        t = make_thread()
        t.current_phase()
        from repro.guest.phases import Exit

        assert isinstance(t.advance_phase(), Exit)
        assert isinstance(t.advance_phase(), Exit)

    def test_effective_profile_prefers_phase_profile(self):
        from repro.hardware.cache import MemoryProfile

        special = MemoryProfile(wss_bytes=1234)

        def body(thread):
            yield Compute(10, profile=special)

        t = GuestThread("t", body, profile=MemoryProfile(wss_bytes=1))
        t.current_phase()
        assert t.effective_profile() is special

    def test_runnable_states(self):
        t = make_thread()
        assert t.runnable
        t.state = ThreadState.BLOCKED
        assert not t.runnable
        t.state = ThreadState.SPINNING
        assert t.runnable
