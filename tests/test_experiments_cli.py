"""Tests for the CLI experiment runner and the ablation module."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main
from repro.experiments.ablations import (
    render_boost_ablation,
    render_reuse_ablation,
    run_boost_ablation,
    run_reuse_ablation,
)
from repro.sim.units import MS, SEC


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "clustering" in out

    def test_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure-nine"])

    def test_fast_fig4(self, capsys):
        assert main(["fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "specweb2009" in out


class TestAblationModules:
    def test_boost_ablation_small(self):
        result = run_boost_ablation(
            quanta_ms=(1, 30),
            warmup_ns=200 * MS,
            measure_ns=500 * MS,
        )
        # BOOST keeps exclusive IO fast at the default quantum; without
        # it the latency is at least an order of magnitude higher
        assert (
            result.latency[(False, 30)] > 10 * result.latency[(True, 30)]
        )
        text = render_boost_ablation(result)
        assert "BOOST" in text

    def test_reuse_ablation_small(self):
        result = run_reuse_ablation(
            exponents=(0.5, 1.0),
            warmup_ns=200 * MS,
            measure_ns=500 * MS,
        )
        assert result.quantum_sensitivity[1.0] > 1.0
        text = render_reuse_ablation(result)
        assert "exponent" in text
