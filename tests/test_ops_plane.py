"""The ops plane contract: observe everything, steer nothing.

Covers the fan-out sink's back-pressure, the status fold and
status.json, the flight recorder's ring dumps, the HTTP endpoints and
— the load-bearing guarantee every simlint waiver in ``repro.ops``
cites — that attaching the full plane (server included) leaves a
sweep's folded bytes identical.
"""

from __future__ import annotations

import json
import pickle
import urllib.request

import pytest

from repro.exec import Engine, WorkerCrash
from repro.exec.events import (
    CellFinished,
    Finished,
    Interrupted,
    PhaseStarted,
    read_event_log,
    validate_events,
)
from repro.ops import (
    EventRing,
    FanOutSink,
    FlightRecorder,
    OpsPlane,
    attach_ops,
    parse_serve_spec,
    render_slowest,
    resolve_serve_spec,
    slowest_cells,
)
from repro.ops.status import read_status

from tests.engine_cells import make_cells, make_suicide_cells


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read()


# ----------------------------------------------------------------------
# serve-spec parsing
# ----------------------------------------------------------------------
class TestServeSpec:
    def test_port_only_binds_loopback(self):
        assert parse_serve_spec("9321") == ("127.0.0.1", 9321)

    def test_host_and_port(self):
        assert parse_serve_spec("0.0.0.0:8080") == ("0.0.0.0", 8080)

    def test_port_zero_is_legal(self):
        assert parse_serve_spec("0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["", "abc", "host:", "70000", ":-1"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_serve_spec(bad)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE", raising=False)
        assert resolve_serve_spec(None) is None
        monkeypatch.setenv("REPRO_SERVE", "127.0.0.1:7777")
        assert resolve_serve_spec(None) == ("127.0.0.1", 7777)
        assert resolve_serve_spec("8888") == ("127.0.0.1", 8888)


# ----------------------------------------------------------------------
# fan-out + back-pressure
# ----------------------------------------------------------------------
class TestFanOut:
    def test_forwards_to_wrapped_and_ring(self):
        seen = []
        ring = EventRing(capacity=8)
        fanout = FanOutSink(wrapped=[seen.append], ring=ring)
        event = Finished(seq=0, cells=1, ran=1, hits=0, resumed=0)
        fanout(event)
        assert seen == [event]
        assert ring.snapshot() == [event.to_json()]

    def test_subscriber_receives_live_events(self):
        fanout = FanOutSink()
        subscription = fanout.subscribe()
        event = PhaseStarted(seq=0, phase="plan", cells=2)
        fanout(event)
        assert subscription.get(timeout=1.0) == event.to_json()
        fanout.unsubscribe(subscription)
        assert fanout.subscriber_count == 0

    def test_slow_reader_drops_instead_of_blocking(self):
        fanout = FanOutSink()
        subscription = fanout.subscribe(depth=2)
        for seq in range(5):
            fanout(PhaseStarted(seq=seq, phase="plan"))
        # the sink never blocked; the overflow was counted, not queued
        assert subscription.dropped == 3
        assert subscription.get(timeout=0.1)["seq"] == 0
        assert subscription.get(timeout=0.1)["seq"] == 1
        assert subscription.get(timeout=0.1) is None

    def test_ring_eviction_is_counted(self):
        ring = EventRing(capacity=3)
        for seq in range(10):
            ring.push({"seq": seq})
        assert len(ring) == 3
        assert ring.dropped == 7
        assert [doc["seq"] for doc in ring.snapshot()] == [7, 8, 9]

    def test_close_wakes_blocked_readers(self):
        fanout = FanOutSink()
        subscription = fanout.subscribe()
        fanout.close()
        assert subscription.closed
        assert subscription.get(timeout=0.1) is None


# ----------------------------------------------------------------------
# the status fold + status.json
# ----------------------------------------------------------------------
class TestRunStatus:
    def test_document_tracks_a_run(self, tmp_path):
        engine = Engine(jobs=1, run_root=tmp_path / "runs")
        engine.run(make_cells(4), stage="s1")
        doc = engine.status.document()
        assert doc["phase"] == "fold"
        assert doc["cells"]["done"] == 4
        assert doc["cells"]["ran"] == 4
        assert doc["cells"]["checkpointed"] == 4
        assert doc["cells"]["fold_lag"] == 0
        assert doc["stages"]["s1"]["done"] == 4
        assert doc["sweeps_finished"] == 1
        assert doc["run"]["run_id"] == engine.run_dir.run_id
        assert doc["run"]["plan"] == engine.plan_fingerprint
        assert doc["eta_seconds"] == 0.0  # nothing remaining
        engine.close()

    def test_status_json_written_and_consistent_with_journal(
        self, tmp_path
    ):
        engine = Engine(jobs=1, run_root=tmp_path / "runs")
        engine.run(make_cells(5), stage="s1")
        engine.close()
        status = read_status(engine.run_dir.path / "status.json")
        assert status is not None
        journal = [
            line
            for line in (engine.run_dir.path / "journal.jsonl")
            .read_text()
            .splitlines()
            if line.strip()
        ]
        assert status["cells"]["checkpointed"] == len(journal) == 5
        # no stranded temp file from the atomic rewrite
        assert not (engine.run_dir.path / "status.json.tmp").exists()

    def test_expect_cells_widens_the_expected_total(self):
        engine = Engine(jobs=1)
        engine.expect_cells(40)
        engine.run(make_cells(4))
        doc = engine.status.document()
        assert doc["cells"]["planned"] == 4
        assert doc["cells"]["expected"] == 40
        # 4 ran cells give a rate; 36 remain, so an ETA exists
        assert doc["eta_seconds"] is not None and doc["eta_seconds"] >= 0
        engine.close()


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_dump_on_interrupted_event_validates_as_ring(self, tmp_path):
        recorder = FlightRecorder(dir_provider=lambda: tmp_path)
        recorder(PhaseStarted(seq=0, phase="plan", cells=2))
        recorder(Interrupted(seq=1, completed=1, total=2, reason="test"))
        assert len(recorder.dumps) == 1
        dump = recorder.dumps[0]
        records = read_event_log(dump)
        assert validate_events(records, partial=True, ring=True) == []
        meta = json.loads(
            dump.with_suffix(".meta.json").read_text(encoding="utf-8")
        )
        assert meta["reason"] == "interrupted:test"
        assert meta["events"] == 2

    def test_head_truncated_dump_needs_ring_mode(self, tmp_path):
        """A tiny ring loses the sweep opener; ``--ring`` waives the
        head checks, plain validation still rejects the shape."""
        recorder = FlightRecorder(
            dir_provider=lambda: tmp_path, capacity=4
        )
        engine = Engine(jobs=1, sinks=[recorder])
        engine.run(make_cells(6))
        path = recorder.dump("manual")
        records = read_event_log(path)
        assert validate_events(records, partial=True, ring=True) == []
        assert validate_events(records, partial=True) != []
        engine.close()

    def test_empty_ring_never_dumps(self, tmp_path):
        recorder = FlightRecorder(dir_provider=lambda: tmp_path)
        assert recorder.dump("nothing-yet") is None
        assert list(tmp_path.iterdir()) == []

    def test_worker_crash_leaves_a_valid_dump(self, tmp_path):
        """The in-process twin of the subprocess crash-suite leg."""
        engine = Engine(jobs=2, run_root=tmp_path / "runs")
        plane = attach_ops(engine, signals=False)
        with pytest.raises(WorkerCrash):
            engine.run(make_suicide_cells(6, die_at=3), stage="crash")
        assert len(plane.recorder.dumps) == 1
        records = read_event_log(plane.recorder.dumps[0])
        assert validate_events(records, partial=True, ring=True) == []
        meta = json.loads(
            plane.recorder.dumps[0]
            .with_suffix(".meta.json")
            .read_text(encoding="utf-8")
        )
        assert meta["reason"] == "interrupted:worker-crash"
        assert meta["status"]["interrupted"] == "worker-crash"
        plane.close()
        engine.close()


# ----------------------------------------------------------------------
# HTTP endpoints
# ----------------------------------------------------------------------
class TestHttpEndpoints:
    @pytest.fixture()
    def served(self, tmp_path):
        engine = Engine(jobs=1, run_root=tmp_path / "runs")
        plane = attach_ops(
            engine, spec=("127.0.0.1", 0), signals=False
        )
        engine.run(make_cells(4), stage="http")
        yield engine, plane, plane.server.url
        plane.close()
        engine.close()

    def test_metrics_exposition(self, served):
        _engine, _plane, url = served
        text = _get(url + "/metrics").decode()
        assert "# HELP repro_engine_cells " in text
        assert "# TYPE repro_engine_cells counter" in text
        assert 'repro_engine_cells{outcome="ran"} 4.0' in text
        assert "repro_engine_sweeps 1.0" in text
        assert "# TYPE repro_engine_cell_seconds histogram" in text
        assert "repro_engine_cell_seconds_count 4" in text

    def test_status_document(self, served):
        engine, _plane, url = served
        doc = json.loads(_get(url + "/status"))
        assert doc == engine.status.document() | {
            "updated_unix": doc["updated_unix"],
            "elapsed_seconds": doc["elapsed_seconds"],
        }
        assert doc["cells"]["done"] == 4

    def test_events_replay_with_limit(self, served):
        _engine, _plane, url = served
        body = _get(url + "/events?limit=5&replay=5").decode()
        lines = [line for line in body.splitlines() if line.strip()]
        assert len(lines) == 5
        docs = [json.loads(line) for line in lines]
        assert validate_events(docs, partial=True, ring=True) == []
        # the replay is the tail of the stream: terminal event included
        assert docs[-1]["kind"] == "finished"

    def test_healthz_and_404(self, served):
        _engine, _plane, url = served
        assert _get(url + "/healthz") == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url + "/nope")
        assert excinfo.value.code == 404

    def test_index_names_the_routes(self, served):
        _engine, _plane, url = served
        body = _get(url + "/").decode()
        for route in ("/metrics", "/status", "/events", "/healthz"):
            assert route in body


# ----------------------------------------------------------------------
# the determinism guarantee
# ----------------------------------------------------------------------
class TestObserverEffect:
    def test_serve_preserves_fold_bytes(self, tmp_path):
        """The pinning test every repro.ops simlint waiver names: the
        full plane — metrics fold, ring, recorder, HTTP server, live
        /events reader — changes nothing about the folded results."""
        bare = Engine(jobs=1)
        baseline = pickle.dumps(bare.run(make_cells(8), stage="obs"))
        bare.close()

        observed = Engine(jobs=1, run_root=tmp_path / "runs")
        plane = attach_ops(
            observed, spec=("127.0.0.1", 0), signals=False
        )
        url = plane.server.url
        _get(url + "/status")  # a live reader mid-run shape
        served = pickle.dumps(observed.run(make_cells(8), stage="obs"))
        _get(url + "/metrics")
        plane.close()
        observed.close()
        assert served == baseline

    def test_parallel_with_plane_matches_parallel_without(self, tmp_path):
        """Like-for-like byte identity (the plane is the only delta),
        plus value equality against a bare serial run — the same
        contract the exec equivalence suite pins, now with the
        observer attached."""
        bare = Engine(jobs=2)
        baseline = pickle.dumps(bare.run(make_cells(8), stage="par"))
        bare.close()
        serial = Engine(jobs=1)
        serial_values = serial.run(make_cells(8), stage="par")
        serial.close()

        observed = Engine(jobs=2, run_root=tmp_path / "runs")
        plane = attach_ops(observed, signals=False)
        values = observed.run(make_cells(8), stage="par")
        plane.close()
        observed.close()
        assert pickle.dumps(values) == baseline
        assert values == serial_values
        # the jobs=2 run produced worker heartbeats (a worker that
        # never won a task may still have its first beat in flight at
        # teardown, so assert on the pool total, not per worker)
        snapshot = observed.worker_health.snapshot()
        assert snapshot["known"] >= 1
        assert sum(
            entry["beats"] for entry in snapshot["workers"].values()
        ) >= 1


# ----------------------------------------------------------------------
# per-cell resource profiles
# ----------------------------------------------------------------------
class TestProfiles:
    def test_cell_finished_carries_a_profile(self):
        engine = Engine(jobs=1)
        events = []
        engine.add_sink(events.append)
        engine.run(make_cells(3))
        finished = [e for e in events if isinstance(e, CellFinished)]
        assert len(finished) == 3
        for event in finished:
            assert event.max_rss_kb > 0  # the process has *some* RSS
            assert event.utime_s >= 0.0 and event.stime_s >= 0.0
        engine.close()

    def test_journal_profile_fields_and_slowest_table(self, tmp_path):
        engine = Engine(jobs=1, run_root=tmp_path / "runs")
        engine.run(make_cells(4), stage="prof")
        engine.close()
        from repro.ops import read_journal

        journal = read_journal(engine.run_dir.path / "journal.jsonl")
        assert len(journal) == 4
        for record in journal:
            assert "utime_s" in record and "max_rss_kb" in record
        top = slowest_cells(journal, k=2)
        assert len(top) == 2
        assert top[0]["seconds"] >= top[1]["seconds"]
        table = render_slowest(journal, k=2, title="slowest")
        assert "slowest (top 2 of 4)" in table
        assert "arith:" in table

    def test_render_handles_empty_journal(self):
        assert "no executed cells" in render_slowest([], k=3)


# ----------------------------------------------------------------------
# plane lifecycle
# ----------------------------------------------------------------------
class TestPlaneLifecycle:
    def test_plane_without_server_still_records(self, tmp_path):
        engine = Engine(jobs=1, run_root=tmp_path / "runs")
        plane = OpsPlane(engine)
        engine.run(make_cells(3))
        assert len(plane.ring) > 0
        assert plane.server is None
        path = plane.recorder.dump("headless")
        assert path is not None and path.parent == engine.run_dir.path
        plane.close()
        engine.close()

    def test_close_is_idempotent(self):
        engine = Engine(jobs=1)
        plane = attach_ops(
            engine, spec=("127.0.0.1", 0), signals=False
        )
        plane.close()
        plane.close()
        engine.close()
