"""Golden regression snapshot of the fleet placement comparison.

Pins the summary numbers of a small-but-real fleet run — 4 hosts,
up to 24 VMs, 2 epochs of the ``weekday`` story under all three
placement policies — against ``tests/golden/fleet_comparison.json``.
Regenerate intentionally with

    pytest tests/test_fleet_golden.py --update-golden

The qualitative assertion (the AQL-aware placer's p99 request latency
beats the type-blind bin packers) is unconditional — no tolerance can
excuse a reversed ordering.
"""

import pytest

from repro.exec import SweepRunner
from repro.experiments.fleet import FLEET_PLACERS
from repro.fleet import STORIES, FleetSimulation, FleetSpec, make_placer
from repro.sim.units import MS
from tests.test_golden_shapes import GOLDEN_DIR, _assert_close, _check_or_update

GOLDEN_PATH = GOLDEN_DIR / "fleet_comparison.json"
TOLERANCE = 0.05

#: 4 hosts x 8 slots = 32 slots; weekday epochs 0-1 target 14 then 24 VMs
GOLDEN_SPEC = FleetSpec(
    hosts=4,
    host_class="medium",
    vcpu_ratio=2,
    epochs=2,
    warmup_ns=40 * MS,
    epoch_ns=120 * MS,
    migration_lag_ns=20 * MS,
    migration_budget=4,
)


def _compute_fleet_comparison() -> dict:
    """The summary comparison table as nested numbers, per placer."""
    runner = SweepRunner()
    shapes: dict[str, dict[str, float]] = {}
    for placer_name in FLEET_PLACERS:
        run = FleetSimulation(
            GOLDEN_SPEC,
            STORIES["weekday"],
            make_placer(placer_name),
            seed=0,
            runner=runner,
        ).run()
        shapes[placer_name] = {
            "peak_vms": run.peak_vms,
            "p99_ms": run.p99_ms,
            "consolidation": run.consolidation,
            "migrations": run.total_migrations,
            "units": run.units,
        }
    return shapes


class TestFleetGolden:
    @pytest.fixture(scope="class")
    def computed(self):
        return _compute_fleet_comparison()

    def test_matches_snapshot(self, computed, update_golden):
        golden = _check_or_update(
            GOLDEN_PATH, computed, TOLERANCE, update_golden
        )
        _assert_close(golden["values"], computed, golden["tolerance"])

    def test_every_placer_runs_the_same_traffic(self, computed):
        peaks = {shape["peak_vms"] for shape in computed.values()}
        assert peaks == {24}, "traffic must be placement-independent"

    def test_aql_aware_wins_on_latency(self, computed):
        """Type co-location isolates io VMs from quantum-hungry mates."""
        aql = computed["aql_aware"]["p99_ms"]
        assert aql < computed["first_fit"]["p99_ms"]
        assert aql < computed["best_fit"]["p99_ms"]
