"""Decision-audit tests: every recorded type flip must be independently
re-derivable from its own window snapshot, and the ``telemetry`` report
for the fig6 cell is pinned by a golden snapshot."""

import json
from pathlib import Path

import pytest

from repro.experiments.telemetry_report import (
    render_telemetry_report,
    report_jsonable,
    run_telemetry_report,
)
from repro.fuzz.invariants import rederive_flip
from repro.sim.units import MS
from repro.telemetry import ClusterDecision, DecisionAudit, PoolChange, TypeFlip

GOLDEN_PATH = Path(__file__).parent / "golden" / "telemetry_report.json"

#: short windows — past the AQL cold start (240 ms), across several
#: vTRS windows, small enough for a unit-test budget
WARMUP_NS = 400 * MS
MEASURE_NS = 600 * MS


@pytest.fixture(scope="module")
def report():
    return run_telemetry_report(warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS)


class TestFlipReproducibility:
    """The fig4-style property: the snapshot justifies the verdict.

    The re-derivation itself lives in ``repro.fuzz.invariants`` —
    the fuzzer's ``vtrs_rederivation`` invariant and this suite hold
    the audit trail to the same contract with the same code.
    """

    def test_scenario_produces_flips(self, report):
        audit = report.telemetry.audit
        assert len(audit.flips) >= 10  # all 16 vCPUs get typed
        # S2 contains an IO server, CPU burners and an LLC streamer, so
        # at least three distinct verdicts must appear
        assert len({flip.new_type for flip in audit.flips}) >= 3

    def test_every_flip_rederivable_from_its_window(self, report):
        for flip in report.telemetry.audit.flips:
            assert rederive_flip(flip) == flip.new_type, (
                f"{flip.vcpu_name}@{flip.time_ns}: recorded window does "
                f"not reproduce the {flip.new_type} verdict"
            )

    def test_recorded_averages_match_window(self, report):
        for flip in report.telemetry.audit.flips:
            recorded = dict(flip.averages)
            assert recorded[flip.new_type] == pytest.approx(
                flip.winning_average
            )
            # the winner's recorded average is the max (ties allowed)
            assert flip.winning_average == pytest.approx(
                max(recorded.values())
            )

    def test_flip_chain_consistent_per_vcpu(self, report):
        audit = report.telemetry.audit
        for vcpu_id in {flip.vcpu_id for flip in audit.flips}:
            chain = audit.flips_of(vcpu_id)
            assert chain[0].old_type is None  # first verdict ever
            for previous, current in zip(chain, chain[1:]):
                assert current.old_type == previous.new_type
                assert current.time_ns >= previous.time_ns
                assert current.new_type != current.old_type


class TestDecisionsAndLedger:
    def test_cold_start_then_real_decisions(self, report):
        decisions = report.telemetry.audit.decisions
        assert decisions, "AQL never ran"
        assert decisions[0].skipped  # initial-delay windows sit out
        real = [d for d in decisions if not d.skipped]
        assert real, "no decision past the cold start"
        for decision in real:
            assert decision.input_types  # census recorded
            assert decision.pools  # cluster assignments recorded

    def test_plan_lands_in_ledger_with_migrations(self, report):
        audit = report.telemetry.audit
        changed = [d for d in audit.decisions if d.changed]
        plans = [c for c in audit.ledger if c.kind == "plan"]
        assert len(plans) == len(changed)
        assert all(p.migrations_total > 0 for p in plans)
        assert report.summary["audit_pool_ledger"] == float(len(audit.ledger))

    def test_audit_unit_summary(self):
        audit = DecisionAudit()
        audit.record_flip(TypeFlip(
            time_ns=1, vcpu_id=0, vcpu_name="v", old_type=None,
            new_type="LLCF", window=(), averages=(("LLCF", 1.0),),
        ))
        audit.record_decision(ClusterDecision(
            time_ns=2, decision_index=1, input_types=((0, "LLCF"),),
            changed=True, pools=(), spills=(),
        ))
        audit.record_pool_change(PoolChange(
            time_ns=3, kind="plan", detail="d", migrations_total=4, pools=(),
        ))
        assert audit.summary() == {
            "audit_type_flips": 1.0,
            "audit_decisions": 1.0,
            "audit_plan_changes": 1.0,
            "audit_pool_ledger": 1.0,
        }
        assert len(audit) == 3


class TestGoldenReport:
    """The CLI report for the fig6 cell, pinned exactly.

    The simulator is deterministic, so the report's JSON form must
    reproduce byte-for-byte; regenerate intentionally with

        pytest tests/test_telemetry_audit.py --update-golden
    """

    def test_report_matches_golden(self, report, update_golden):
        computed = json.loads(json.dumps(report_jsonable(report)))
        if update_golden:
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(
                json.dumps(computed, indent=2, sort_keys=True) + "\n"
            )
            return
        if not GOLDEN_PATH.exists():
            pytest.fail(
                f"golden snapshot {GOLDEN_PATH} missing — run "
                "`pytest tests/test_telemetry_audit.py --update-golden`"
            )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert computed == golden, (
            "telemetry report drifted from the golden snapshot — if "
            "intentional, rerun with --update-golden"
        )

    def test_render_mentions_every_flip(self, report):
        text = render_telemetry_report(report)
        for flip in report.telemetry.audit.flips:
            assert flip.vcpu_name in text
        assert "Pool-change ledger" in text
        assert "AQL decision log" in text


class TestFuzzScaleRederivation:
    """Audit re-derivation at fuzz scale: every type flip across a
    generated churn corpus (boots, phase changes, faults mid-window)
    re-derives from its recorded cursor window — not just the static
    fig6 scenario above."""

    def test_corpus_flips_all_rederive(self):
        from repro.fuzz import generate_scenario, run_scenario_fuzz

        flips_seen = 0
        for seed in (11, 12, 13):
            scenario = generate_scenario(seed, policies=("aql",))
            outcome = run_scenario_fuzz(scenario)
            audit = outcome.telemetry.audit
            for flip in audit.flips:
                assert rederive_flip(flip) == flip.new_type, (
                    f"seed {seed}, {flip.vcpu_name}@{flip.time_ns}: "
                    f"window does not reproduce {flip.new_type}"
                )
            flips_seen += len(audit.flips)
        assert flips_seen >= 10, "corpus produced too few flips to matter"
