"""Span tracer tests: structural nesting, and the Hypothesis property
that begin/end nesting stays well-formed under random op schedules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import SpanError, SpanTracer


class TestSpanBasics:
    def test_begin_end_parent_links(self):
        tracer = SpanTracer()
        outer = tracer.begin(0, "outer", track="t")
        inner = tracer.begin(10, "inner", track="t")
        assert inner.parent_id == outer.span_id
        tracer.end(20, inner)
        tracer.end(30, outer)
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]
        assert outer.duration_ns == 30
        assert inner.duration_ns == 10

    def test_tracks_are_independent(self):
        tracer = SpanTracer()
        a = tracer.begin(0, "a", track="one")
        b = tracer.begin(5, "b", track="two")
        assert b.parent_id is None
        tracer.end(7, a)
        tracer.end(9, b)

    def test_end_out_of_order_raises(self):
        tracer = SpanTracer()
        outer = tracer.begin(0, "outer", track="t")
        tracer.begin(1, "inner", track="t")
        with pytest.raises(SpanError, match="innermost-first"):
            tracer.end(2, outer)

    def test_end_with_nothing_open_raises(self):
        with pytest.raises(SpanError, match="no open span"):
            SpanTracer().end(5, track="t")

    def test_time_travel_raises(self):
        tracer = SpanTracer()
        span = tracer.begin(100, "s", track="t")
        with pytest.raises(SpanError, match="before its start"):
            tracer.end(50, span)
        tracer2 = SpanTracer()
        tracer2.begin(100, "parent", track="t")
        with pytest.raises(SpanError, match="before its parent"):
            tracer2.begin(50, "child", track="t")

    def test_duration_of_open_span_raises(self):
        tracer = SpanTracer()
        span = tracer.begin(0, "open", track="t")
        with pytest.raises(SpanError, match="still open"):
            span.duration_ns

    def test_instant_is_zero_duration(self):
        tracer = SpanTracer()
        mark = tracer.instant(42, "mark", track="t", detail="x")
        assert mark.start_ns == mark.end_ns == 42
        assert mark.args["detail"] == "x"

    def test_complete_retroactive_and_overlap_guard(self):
        tracer = SpanTracer()
        done = tracer.complete(0, 30, "period", track="aql")
        assert done.duration_ns == 30
        open_span = tracer.begin(40, "decide", track="aql")
        # retroactive span that starts before the open span's begin
        # would interleave, not nest
        with pytest.raises(SpanError, match="overlaps open span"):
            tracer.complete(35, 45, "bad", track="aql")
        # fully inside the open span is fine and parents under it
        nested = tracer.complete(41, 44, "ok", track="aql")
        assert nested.parent_id == open_span.span_id
        with pytest.raises(SpanError, match="end .* < start|end 1 < start"):
            tracer.complete(5, 1, "backwards", track="aql")

    def test_close_all_closes_everything(self):
        tracer = SpanTracer()
        tracer.begin(0, "a", track="x")
        tracer.begin(1, "b", track="x")
        tracer.begin(2, "c", track="y")
        assert tracer.close_all(10) == 3
        assert tracer.open_spans() == []
        assert all(s.end_ns == 10 for s in tracer.spans())

    def test_retention_cap_counts_drops(self):
        tracer = SpanTracer(max_spans=2)
        for i in range(4):
            tracer.instant(i, f"m{i}")
        assert len(tracer) == 2
        assert tracer.dropped == 2


# one operation of a random schedule: (op kind, track index, time step)
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["begin", "end", "instant", "complete"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


@given(ops=_OPS)
def test_nesting_always_well_formed_under_random_schedules(ops):
    """Any op schedule leaves only structurally valid spans behind.

    Ops run at monotonically non-decreasing virtual times (like the
    simulator's clock).  `end` on an empty track must raise and change
    nothing; afterwards every completed span must satisfy start <= end
    and sit fully inside its completed parent — the nesting contract
    chrome://tracing and the JSONL exposition rely on.
    """
    tracer = SpanTracer()
    now = 0
    for kind, track_index, step in ops:
        now += step
        track = f"track{track_index}"
        if kind == "begin":
            tracer.begin(now, f"s@{now}", track=track)
        elif kind == "instant":
            tracer.instant(now, f"i@{now}", track=track)
        elif kind == "complete":
            open_stack = [
                s for s in tracer.open_spans() if s.track == track
            ]
            start = max(
                now - step, open_stack[-1].start_ns if open_stack else 0
            )
            tracer.complete(start, now, f"c@{now}", track=track)
        else:  # end
            has_open = any(s.track == track for s in tracer.open_spans())
            if has_open:
                tracer.end(now, track=track)
            else:
                with pytest.raises(SpanError):
                    tracer.end(now, track=track)
    tracer.close_all(now)

    assert tracer.open_spans() == []
    by_id = {span.span_id: span for span in tracer.spans()}
    for span in tracer.spans():
        assert span.end_ns is not None
        assert span.start_ns <= span.end_ns
        if span.parent_id is not None and span.parent_id in by_id:
            parent = by_id[span.parent_id]
            assert parent.track == span.track
            assert parent.start_ns <= span.start_ns
            assert span.end_ns <= parent.end_ns
