"""The self-check: simlint over this repository must stay clean.

This is what makes the determinism invariants *regress-proof*: a stray
``time.time()`` in a scheduling path, an unseeded generator, or a new
un-slotted hot-path class fails the ordinary test run, not just a CI
lint job someone may not read.  Also locks the CLI contract the
Makefile, pre-commit hook and CI depend on — including the acceptance
property that a seeded-violation run exits non-zero with the expected
rule ids in JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import Analyzer

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BENCHMARKS = REPO_ROOT / "benchmarks"
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src_dir = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_source_tree_is_clean():
    violations = Analyzer().analyze_paths([SRC, BENCHMARKS])
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"simlint violations in the tree:\n{rendered}"


def test_cli_clean_tree_exits_zero():
    result = _run_cli("src/repro", "benchmarks")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "simlint: clean" in result.stdout


def test_cli_seeded_violations_exit_nonzero_with_rule_ids_in_json():
    result = _run_cli("--format", "json", str(FIXTURES))
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["schema"] == 1
    assert document["exit"] == 1
    fired = set(document["counts"])
    expected = {
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006", "SIM007",
    }
    assert fired == expected, f"expected all rules to fire, got {fired}"
    # every violation row carries a full location
    for row in document["violations"]:
        assert row["path"] and row["line"] >= 1 and row["rule"] in expected


def test_cli_rule_filter_restricts_findings():
    result = _run_cli("--format", "json", "--rule", "SIM001", str(FIXTURES))
    assert result.returncode == 1
    document = json.loads(result.stdout)
    assert set(document["counts"]) == {"SIM001"}
    assert [row["rule"] for row in document["checked_rules"]] == ["SIM001"]


def test_cli_unknown_rule_is_a_usage_error():
    result = _run_cli("--rule", "SIM999", str(FIXTURES))
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_cli_list_rules_prints_catalogue():
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in (
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006", "SIM007",
    ):
        assert rule_id in result.stdout


def test_cli_missing_path_is_a_usage_error():
    result = _run_cli("no/such/dir")
    assert result.returncode == 2
    assert "no such path" in result.stderr
