"""The self-check: simlint over this repository must stay clean.

This is what makes the determinism invariants *regress-proof*: a stray
``time.time()`` in a scheduling path, an unseeded generator, or a new
un-slotted hot-path class fails the ordinary test run, not just a CI
lint job someone may not read.  Also locks the CLI contract the
Makefile, pre-commit hook and CI depend on — including the acceptance
property that a seeded-violation run exits non-zero with the expected
rule ids in JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import Analyzer

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BENCHMARKS = REPO_ROOT / "benchmarks"
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src_dir = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


def test_source_tree_is_clean():
    violations = Analyzer().analyze_paths([SRC, BENCHMARKS])
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"simlint violations in the tree:\n{rendered}"


def test_cli_clean_tree_exits_zero():
    result = _run_cli("src/repro", "benchmarks")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "simlint: clean" in result.stdout


def test_cli_seeded_violations_exit_nonzero_with_rule_ids_in_json():
    result = _run_cli("--format", "json", str(FIXTURES))
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["schema"] == 1
    assert document["exit"] == 1
    fired = set(document["counts"])
    expected = {
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006", "SIM007",
    }
    assert fired == expected, f"expected all rules to fire, got {fired}"
    # every violation row carries a full location
    for row in document["violations"]:
        assert row["path"] and row["line"] >= 1 and row["rule"] in expected


def test_cli_rule_filter_restricts_findings():
    result = _run_cli("--format", "json", "--rule", "SIM001", str(FIXTURES))
    assert result.returncode == 1
    document = json.loads(result.stdout)
    assert set(document["counts"]) == {"SIM001"}
    assert [row["rule"] for row in document["checked_rules"]] == ["SIM001"]


def test_cli_unknown_rule_is_a_usage_error():
    result = _run_cli("--rule", "SIM999", str(FIXTURES))
    assert result.returncode == 2
    assert "unknown rule" in result.stderr


def test_cli_list_rules_prints_catalogue():
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    for n in range(1, 10):
        assert f"SIM00{n}" in result.stdout


def test_cli_missing_path_is_a_usage_error():
    result = _run_cli("no/such/dir")
    assert result.returncode == 2
    assert "no such path" in result.stderr


# ----------------------------------------------------------------------
# whole-program mode
# ----------------------------------------------------------------------
def test_whole_program_source_tree_is_clean():
    from repro.analysis import WholeProgramAnalyzer

    violations = WholeProgramAnalyzer().analyze_paths([SRC, BENCHMARKS])
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"whole-program violations in the tree:\n{rendered}"


def test_cli_whole_program_fixture_gate_fires_all_nine_rules():
    result = _run_cli("--whole-program", "--format", "json", str(FIXTURES))
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    fired = set(document["counts"])
    expected = {f"SIM00{n}" for n in range(1, 10)}
    assert fired == expected, f"expected all nine rules to fire, got {fired}"


def test_cli_selecting_sim008_implies_whole_program():
    result = _run_cli("--format", "json", "--rule", "SIM008", str(FIXTURES))
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert set(document["counts"]) == {"SIM008"}
    # interprocedural findings carry their witness path
    assert all(row.get("trace") for row in document["violations"])


def test_cli_explain_prints_witness_paths():
    result = _run_cli(
        "--whole-program", "--explain", "SIM008", str(FIXTURES / "interproc")
    )
    assert result.returncode == 1
    assert "witness path" in result.stdout
    assert "time.perf_counter() at line" in result.stdout


def test_cli_sarif_output_is_wellformed():
    result = _run_cli("--whole-program", "--format", "sarif", str(FIXTURES))
    assert result.returncode == 1
    document = json.loads(result.stdout)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {f"SIM00{n}" for n in range(1, 10)} <= rule_ids
    assert run["results"], "expected findings over the fixture tree"
    for row in run["results"]:
        location = row["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1


def test_cli_baseline_gate_tolerates_known_findings(tmp_path):
    baseline = tmp_path / "baseline.json"
    write = _run_cli(
        "--whole-program", "--write-baseline",
        "--baseline", str(baseline), str(FIXTURES / "interproc"),
    )
    assert write.returncode == 0, write.stdout + write.stderr
    gated = _run_cli(
        "--whole-program", "--baseline", str(baseline),
        str(FIXTURES / "interproc"),
    )
    assert gated.returncode == 0, gated.stdout + gated.stderr
    assert "baselined finding(s) hidden" in gated.stdout


def test_cli_missing_baseline_is_a_usage_error(tmp_path):
    result = _run_cli(
        "--whole-program", "--baseline", str(tmp_path / "absent.json"),
        str(FIXTURES / "interproc"),
    )
    assert result.returncode == 2
    assert "--write-baseline" in result.stderr


def test_cli_changed_only_cache_is_result_invariant(tmp_path):
    cache_dir = str(tmp_path / "cache")
    args = (
        "--whole-program", "--changed-only", "--cache-dir", cache_dir,
        "--format", "json", str(FIXTURES / "interproc"),
    )
    cold = _run_cli(*args)
    warm = _run_cli(*args)
    assert cold.returncode == warm.returncode == 1
    assert json.loads(cold.stdout) == json.loads(warm.stdout)
    assert "155 miss" not in cold.stderr  # only the fixture files are hashed
    assert " 0 hit(s)" in cold.stderr
    assert " 0 miss(es)" in warm.stderr
