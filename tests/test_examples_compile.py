"""The examples must at least parse and import-check.

Running them takes minutes (they are demos, not tests); compiling
catches bitrot cheaply.
"""

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)
