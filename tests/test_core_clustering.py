"""Tests for the two-level clustering (Algorithms 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import PAPER_BEST_QUANTA
from repro.core.clustering import (
    TypedVCpu,
    build_pool_plan,
    cluster_socket,
    distribute_over_sockets,
)
from repro.core.types import VCpuType
from repro.hardware.specs import i7_3770, xeon_e5_4603
from repro.hypervisor.machine import Machine
from repro.sim.units import MS


def make_population(machine, counts):
    """counts: list of (VCpuType, n, llco_cur) -> TypedVCpu list."""
    typed = []
    for vtype, n, llco_cur in counts:
        for i in range(n):
            vm = machine.new_vm(f"{vtype.value}.{len(typed)}", 1)
            typed.append(TypedVCpu(vm.vcpus[0], vtype, llco_cur_avg=llco_cur))
    return typed


class TestTrashingSplit:
    def test_llco_is_trashing(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        assert TypedVCpu(vm.vcpus[0], VCpuType.LLCO).trashing

    def test_llcf_and_lolcf_are_not(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        assert not TypedVCpu(vm.vcpus[0], VCpuType.LLCF).trashing
        assert not TypedVCpu(vm.vcpus[1], VCpuType.LOLCF).trashing

    def test_ioint_plus_threshold(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 2)
        plus = TypedVCpu(vm.vcpus[0], VCpuType.IOINT, llco_cur_avg=60.0)
        minus = TypedVCpu(vm.vcpus[1], VCpuType.IOINT, llco_cur_avg=40.0)
        assert plus.trashing
        assert not minus.trashing

    def test_conspin_plus_threshold(self):
        machine = Machine(seed=0)
        vm = machine.new_vm("vm", 1)
        assert TypedVCpu(vm.vcpus[0], VCpuType.CONSPIN, llco_cur_avg=51.0).trashing


class TestAlgorithm1:
    def test_trashers_packed_first(self):
        machine = Machine(xeon_e5_4603(), seed=0)
        typed = make_population(
            machine,
            [(VCpuType.LLCO, 4, 100.0), (VCpuType.LLCF, 4, 0.0)],
        )
        assignment = distribute_over_sockets(typed, machine.topology.sockets[:2])
        socket0 = assignment[0]
        assert all(tv.vtype == VCpuType.LLCO for tv in socket0)

    def test_fair_count_per_socket(self):
        machine = Machine(xeon_e5_4603(), seed=0)
        typed = make_population(machine, [(VCpuType.LLCF, 12, 0.0)])
        assignment = distribute_over_sockets(typed, machine.topology.sockets)
        sizes = [len(v) for v in assignment.values()]
        assert sum(sizes) == 12
        assert max(sizes) - min(sizes) <= 3  # ceil-chunked

    def test_lolcf_heads_the_non_trashing_list(self):
        """LoLCF lands on the boundary socket next to the trashers,
        shielding LLCF."""
        machine = Machine(xeon_e5_4603(), seed=0)
        typed = make_population(
            machine,
            [
                (VCpuType.LLCO, 2, 100.0),
                (VCpuType.LLCF, 2, 0.0),
                (VCpuType.LOLCF, 2, 0.0),
            ],
        )
        assignment = distribute_over_sockets(typed, machine.topology.sockets[:3])
        boundary = assignment[1]  # socket after the trashers
        assert all(tv.vtype == VCpuType.LOLCF for tv in boundary)

    def test_vm_vcpus_stay_adjacent(self):
        machine = Machine(xeon_e5_4603(), seed=0)
        vm = machine.new_vm("big", 4)
        typed = [TypedVCpu(v, VCpuType.LLCF) for v in vm.vcpus]
        other = machine.new_vm("other", 4)
        typed += [TypedVCpu(v, VCpuType.LLCF) for v in other.vcpus]
        assignment = distribute_over_sockets(typed, machine.topology.sockets[:2])
        for members in assignment.values():
            vms = {tv.vcpu.vm.vm_id for tv in members}
            assert len(vms) == 1  # one VM per socket here

    def test_no_sockets_raises(self):
        with pytest.raises(ValueError):
            distribute_over_sockets([], [])


class TestAlgorithm2:
    def test_single_qlc_cluster(self):
        machine = Machine(seed=0)
        typed = make_population(machine, [(VCpuType.LLCF, 8, 0.0)])
        socket = machine.topology.sockets[0]
        result = cluster_socket(typed, socket.pcpus[:2], PAPER_BEST_QUANTA)
        assert len(result.clusters) == 1
        quantum, vcpus, pcpus = result.clusters[0]
        assert quantum == 90 * MS
        assert len(vcpus) == 8 and len(pcpus) == 2

    def test_agnostic_vcpus_pad_clusters(self):
        machine = Machine(seed=0)
        typed = make_population(
            machine,
            [(VCpuType.CONSPIN, 5, 0.0), (VCpuType.LOLCF, 3, 0.0)],
        )
        socket = machine.topology.sockets[0]
        result = cluster_socket(typed, socket.pcpus[:2], PAPER_BEST_QUANTA)
        assert len(result.clusters) == 1
        quantum, vcpus, pcpus = result.clusters[0]
        assert quantum == 1 * MS  # ConSpin's quantum; LoLCF just fills
        assert len(vcpus) == 8

    def test_mixed_share_spills_to_default_cluster(self):
        """Fig. 3 socket 3: 9 LLCF + 7 ConSpin on 4 pCPUs -> one pCPU's
        share spans both clusters and lands in the 30 ms default."""
        machine = Machine(seed=0)
        typed = make_population(
            machine,
            [(VCpuType.LLCF, 9, 0.0), (VCpuType.CONSPIN, 7, 0.0)],
        )
        socket = machine.topology.sockets[0]
        result = cluster_socket(typed, socket.pcpus[:4], PAPER_BEST_QUANTA)
        by_quantum = {q: (len(v), len(p)) for q, v, p in result.clusters}
        assert by_quantum[90 * MS] == (8, 2)
        assert by_quantum[1 * MS] == (4, 1)
        assert by_quantum[30 * MS] == (4, 1)

    def test_empty_socket_gets_default_pool(self):
        machine = Machine(seed=0)
        socket = machine.topology.sockets[0]
        result = cluster_socket([], socket.pcpus[:4], PAPER_BEST_QUANTA)
        assert len(result.clusters) == 1
        quantum, vcpus, pcpus = result.clusters[0]
        assert not vcpus and len(pcpus) == 4

    def test_vcpus_without_pcpus_rejected(self):
        machine = Machine(seed=0)
        typed = make_population(machine, [(VCpuType.LLCF, 2, 0.0)])
        with pytest.raises(ValueError):
            cluster_socket(typed, [], PAPER_BEST_QUANTA)

    def test_only_agnostic_vcpus_form_default_cluster(self):
        machine = Machine(seed=0)
        typed = make_population(machine, [(VCpuType.LLCO, 4, 100.0)])
        socket = machine.topology.sockets[0]
        result = cluster_socket(typed, socket.pcpus[:1], PAPER_BEST_QUANTA)
        assert len(result.clusters) == 1
        assert result.clusters[0][0] == 30 * MS


class TestBuildPoolPlan:
    def test_fig3_layout(self):
        """The paper's Fig. 3 worked example, end to end."""
        machine = Machine(xeon_e5_4603(), seed=0)
        typed = make_population(
            machine,
            [
                (VCpuType.LLCO, 12, 100.0),
                (VCpuType.IOINT, 12, 80.0),  # IOInt+
                (VCpuType.LLCF, 17, 0.0),
                (VCpuType.CONSPIN, 7, 0.0),  # ConSpin-
            ],
        )
        usable = machine.topology.sockets[1:]
        plan = build_pool_plan(
            machine.topology,
            typed,
            PAPER_BEST_QUANTA,
            sockets=usable,
            filler_policy="paper",
        )
        plan.validate(machine.topology.pcpus, [tv.vcpu for tv in typed])
        # six clusters + the reserved dom0 socket
        populated = [e for e in plan.entries if e[3]]
        assert len(populated) == 6
        quanta = sorted(e[2] for e in populated)
        assert quanta == [1 * MS, 1 * MS, 1 * MS, 30 * MS, 90 * MS, 90 * MS]

    def test_fig3_layout_safe_policy(self):
        """Under the default "safe" filler policy the LLCO remainder on
        socket 1 forms a default-quantum cluster instead of joining the
        IOInt+ 1 ms cluster (the self-correction refinement)."""
        machine = Machine(xeon_e5_4603(), seed=1)
        typed = make_population(
            machine,
            [
                (VCpuType.LLCO, 12, 100.0),
                (VCpuType.IOINT, 12, 80.0),
                (VCpuType.LLCF, 17, 0.0),
                (VCpuType.CONSPIN, 7, 0.0),
            ],
        )
        usable = machine.topology.sockets[1:]
        plan = build_pool_plan(
            machine.topology, typed, PAPER_BEST_QUANTA, sockets=usable
        )
        plan.validate(machine.topology.pcpus, [tv.vcpu for tv in typed])
        socket1 = [
            e for e in plan.entries if e[0].startswith("s1.") and e[3]
        ]
        by_quantum = {e[2]: len(e[3]) for e in socket1}
        assert by_quantum == {1 * MS: 4, 30 * MS: 12}

    def test_plan_covers_everything(self):
        machine = Machine(seed=0)
        typed = make_population(
            machine, [(VCpuType.LLCF, 3, 0.0), (VCpuType.IOINT, 5, 0.0)]
        )
        plan = build_pool_plan(machine.topology, typed, PAPER_BEST_QUANTA)
        plan.validate(machine.topology.pcpus, [tv.vcpu for tv in typed])


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(
        st.tuples(
            st.sampled_from(list(VCpuType)),
            st.integers(min_value=1, max_value=8),
            st.sampled_from([0.0, 80.0]),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_clustering_invariants_hold_for_any_population(counts):
    """For any mix of typed vCPUs: the plan places every vCPU exactly
    once, covers every pCPU exactly once, and no pool exceeds the
    fairness ratio ceil(total_vcpus / total_pcpus) per pCPU."""
    machine = Machine(xeon_e5_4603(), seed=0)
    typed = make_population(machine, counts)
    total = len(typed)
    usable = machine.topology.sockets[1:]
    usable_pcpus = sum(len(s.pcpus) for s in usable)
    if total > usable_pcpus * 16:
        return  # absurd overcommit, not a target configuration
    plan = build_pool_plan(
        machine.topology, typed, PAPER_BEST_QUANTA, sockets=usable
    )
    plan.validate(machine.topology.pcpus, [tv.vcpu for tv in typed])
    k = -(-total // usable_pcpus)
    for name, pcpus, quantum, vcpus in plan.entries:
        if pcpus and vcpus:
            assert len(vcpus) <= k * len(pcpus) + 1e-9
